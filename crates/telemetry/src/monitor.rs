//! Live monitoring: background sampling of a [`Registry`] into bounded
//! ring-buffer time series, declarative health rules evaluated per
//! sample, and post-run backpressure diagnosis for streaming runs.
//!
//! The registry answers "what happened over the whole run"; this
//! module answers "what is happening *now*" — the view the paper
//! argues a readiness pipeline must ship with: stalls, skew, and I/O
//! pathologies only show up while a run is in flight.
//!
//! # Architecture
//!
//! ```text
//! Registry ──(periodic snapshot)──▶ Sampler ──▶ Series ring buffers
//!                                     │              │
//!                              HealthSpec rules   MonitorReport
//!                                     │              │
//!                           monitor.* counters    JSONL artifact
//!                           + HealthEvents        + Diagnosis
//! ```
//!
//! A [`Sampler`] owns an injectable [`MonitorClock`] (the clock seam:
//! [`WallMonitorClock`] in production, [`ManualClock`] in tests, so the
//! same tick sequence yields bitwise-identical series) and on each
//! [`Sampler::tick`] reads every counter, histogram total, and gauge
//! window from the registry, appending one [`SeriesPoint`] per metric
//! to a bounded [`Series`]. Points carry deltas and rates, and for
//! gauges the per-window low/high watermarks from
//! [`Gauge::take_window`](crate::Gauge::take_window) — a spike that
//! rises and falls between two samples is still visible.
//!
//! A [`HealthSpec`] is a list of named threshold/rate/stall rules
//! checked against the fresh points on every tick. A violation emits
//! the `monitor.health.violations` and `monitor.rule.<name>` counters
//! and records a structured [`HealthEvent`] carrying the [`TraceId`]
//! that was active when the sampler was created.
//!
//! [`Sampler::start`] runs ticks on a background thread;
//! [`SamplerHandle::stop`] joins it, takes one final closing sample
//! (so even a run shorter than the interval yields a series), and
//! returns the [`MonitorReport`]. The report renders/parses the
//! `drai-monitor/v1` JSONL artifact and [`MonitorReport::diagnose`]
//! reads the executor's `executor.queue_depth` / `executor.stall_ns` /
//! `executor.<pipeline>.<stage>.inflight` series to name the
//! bottleneck stage and quantify backpressure windows.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{Registry, Stopwatch, TraceContext, TraceId};

/// Format tag of the JSONL artifact; bump on schema changes.
pub const MONITOR_FORMAT: &str = "drai-monitor/v1";

/// Monotonic nanosecond clock the sampler reads on every tick.
///
/// The clock seam: production uses [`WallMonitorClock`]; tests inject
/// a [`ManualClock`] and advance it explicitly, making the sampled
/// series a pure function of the (tick, registry-op) sequence.
pub trait MonitorClock: Send + Sync {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// Wall clock for production sampling, backed by [`Stopwatch`] (the
/// workspace's one sanctioned time source).
#[derive(Debug, Clone, Copy)]
pub struct WallMonitorClock {
    sw: Stopwatch,
}

impl WallMonitorClock {
    /// Start the clock's epoch now.
    pub fn new() -> WallMonitorClock {
        WallMonitorClock {
            sw: Stopwatch::start(),
        }
    }
}

impl Default for WallMonitorClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitorClock for WallMonitorClock {
    fn now_ns(&self) -> u64 {
        self.sw.elapsed_ns()
    }
}

/// Deterministic test clock: time moves only when the test calls
/// [`ManualClock::advance`].
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// New clock at t = 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance by `d`.
    pub fn advance(&self, d: Duration) {
        self.advance_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Advance by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl MonitorClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// What kind of registry metric a [`Series`] tracks; fixes the meaning
/// of the per-point fields (see [`SeriesPoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter: `value` is cumulative, `lo == hi == value`.
    Counter,
    /// Gauge level: `lo`/`hi` are the window watermarks.
    Gauge,
    /// Histogram: `value`/`delta`/`rate` track the observation count,
    /// `hi` is the window's sum delta (e.g. ns accumulated), `lo` is 0.
    Histogram,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }

    fn from_str(s: &str) -> Option<SeriesKind> {
        match s {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            "histogram" => Some(SeriesKind::Histogram),
            _ => None,
        }
    }
}

/// One sample of one metric.
///
/// Field meaning varies by [`SeriesKind`]:
///
/// | kind      | `value`    | `delta`       | `rate`      | `lo`/`hi`          |
/// |-----------|------------|---------------|-------------|--------------------|
/// | counter   | cumulative | vs. prev tick | delta/s     | `value`            |
/// | gauge     | level      | vs. prev tick | delta/s     | window watermarks  |
/// | histogram | obs. count | count delta   | count/s     | `0` / window sum Δ |
///
/// The first point of a series is a baseline: `delta` and `rate` are 0
/// even if the metric predates the sampler, so a sampler attached to a
/// long-lived registry doesn't report its whole history as one spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// 1-based sampler tick that produced this point.
    pub tick: u64,
    /// Clock reading at the tick, ns.
    pub t_ns: u64,
    /// See the kind table.
    pub value: f64,
    /// Change since the previous tick (0 on first observation).
    pub delta: f64,
    /// `delta` per second of window time (0 when the window has no
    /// duration).
    pub rate: f64,
    /// Window low watermark.
    pub lo: f64,
    /// Window high watermark.
    pub hi: f64,
}

/// Bounded ring-buffer time series of one metric: at most `capacity`
/// most-recent points, older points overwritten in FIFO order.
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name this series samples.
    pub name: String,
    /// What the per-point fields mean.
    pub kind: SeriesKind,
    capacity: usize,
    start: usize,
    points: Vec<SeriesPoint>,
}

impl Series {
    fn new(name: &str, kind: SeriesKind, capacity: usize) -> Series {
        Series {
            name: name.to_string(),
            kind,
            capacity: capacity.max(2),
            start: 0,
            points: Vec::new(),
        }
    }

    fn push(&mut self, p: SeriesPoint) {
        if self.points.len() < self.capacity {
            self.points.push(p);
        } else {
            self.points[self.start] = p;
            self.start = (self.start + 1) % self.capacity;
        }
    }

    /// Number of retained points (`<= capacity`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum number of retained points.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points[self.start..]
            .iter()
            .chain(self.points[..self.start].iter())
    }

    /// Most recent point.
    pub fn latest(&self) -> Option<&SeriesPoint> {
        if self.points.is_empty() {
            None
        } else if self.start == 0 {
            self.points.last()
        } else {
            Some(&self.points[self.start - 1])
        }
    }
}

/// Per-sample predicate of one health rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Window high watermark reached the threshold (gauges).
    GaugeAbove(i64),
    /// Window low watermark reached the threshold (gauges).
    GaugeBelow(i64),
    /// Rate fell below the floor (skipped on the baseline tick, which
    /// has no window duration).
    RateBelow(f64),
    /// Rate exceeded the ceiling.
    RateAbove(f64),
    /// The metric made no progress (`delta == 0`) for this many
    /// consecutive ticks.
    StallFor(u32),
}

/// One named health rule: a metric plus a [`Condition`].
#[derive(Debug, Clone)]
pub struct HealthRule {
    /// Rule name; one lowercase `[a-z0-9_]+` segment, becomes the
    /// `monitor.rule.<name>` counter.
    pub name: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Predicate evaluated on that metric's fresh point each tick.
    pub cond: Condition,
}

/// Declarative set of health rules evaluated on every sampler tick.
///
/// ```
/// use drai_telemetry::monitor::{Condition, HealthSpec};
///
/// let spec = HealthSpec::new()
///     .rule("queue_saturated", "executor.queue_depth", Condition::GaugeAbove(64))
///     .rule("no_progress", "executor.items_completed", Condition::StallFor(8));
/// assert_eq!(spec.rules().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HealthSpec {
    rules: Vec<HealthRule>,
}

impl HealthSpec {
    /// Empty spec (no rules; the sampler still records series).
    pub fn new() -> HealthSpec {
        HealthSpec::default()
    }

    /// Add a rule. `name` must be a single lowercase `[a-z0-9_]+`
    /// segment — it is interned into the metric namespace as
    /// `monitor.rule.<name>`, and the `telemetry-names` lint checks
    /// literal rule names at call sites against that grammar.
    pub fn rule(mut self, name: &str, metric: &str, cond: Condition) -> HealthSpec {
        self.rules.push(HealthRule {
            name: name.to_string(),
            metric: metric.to_string(),
            cond,
        });
        self
    }

    /// The rules, in insertion order.
    pub fn rules(&self) -> &[HealthRule] {
        &self.rules
    }
}

/// One rule violation observed at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Tick at which the rule fired.
    pub tick: u64,
    /// Clock reading at the tick, ns.
    pub t_ns: u64,
    /// Name of the violated rule.
    pub rule: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Observed value that violated the condition (watermark for
    /// threshold rules, rate for rate rules, consecutive stalled ticks
    /// for stall rules).
    pub observed: f64,
    /// Trace that was active when the sampler was created, if any.
    pub trace: Option<u64>,
}

/// Progress toward a known total, derived from one counter series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Items completed since the sampler started.
    pub done: u64,
    /// Target item count.
    pub total: u64,
    /// Average completion rate since the first tick, items/s.
    pub rate: f64,
    /// Estimated seconds to completion at the average rate.
    pub eta_s: Option<f64>,
}

impl Progress {
    /// One-line human rendering: `3/16 items (19%), 41.2 items/s, ETA 0.3s`.
    pub fn render(&self) -> String {
        let pct = if self.total > 0 {
            100.0 * self.done as f64 / self.total as f64
        } else {
            100.0
        };
        match self.eta_s {
            Some(eta) => format!(
                "{}/{} items ({pct:.0}%), {:.1} items/s, ETA {eta:.1}s",
                self.done, self.total, self.rate
            ),
            None => format!(
                "{}/{} items ({pct:.0}%), {:.1} items/s",
                self.done, self.total, self.rate
            ),
        }
    }
}

/// Counter to read progress from, plus the target total.
#[derive(Debug, Clone)]
pub struct ProgressTarget {
    /// Counter name (e.g. `executor.items_completed`).
    pub counter: String,
    /// Item count that means "done".
    pub total: u64,
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Ring-buffer capacity per series (clamped to ≥ 2).
    pub capacity: usize,
    /// Optional progress tracking surfaced on each [`TickReport`].
    pub progress: Option<ProgressTarget>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            capacity: 512,
            progress: None,
        }
    }
}

/// What one tick produced; handed to the observer callback (live
/// progress lines) after the sample is stored.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Clock reading at the tick, ns.
    pub t_ns: u64,
    /// Progress toward the configured target, if any.
    pub progress: Option<Progress>,
}

#[derive(Default)]
struct SamplerState {
    ticks: u64,
    first_t_ns: Option<u64>,
    last_t_ns: Option<u64>,
    prev_counters: BTreeMap<String, u64>,
    prev_hists: BTreeMap<String, (u64, u64)>,
    series: BTreeMap<String, Series>,
    events: Vec<HealthEvent>,
    stall_runs: BTreeMap<String, u64>,
}

type Observer = Box<dyn Fn(&TickReport) + Send + Sync>;

/// Periodic registry sampler; see the [module docs](self) for the
/// architecture. Create with [`Sampler::new`], then either drive ticks
/// manually ([`Sampler::tick`], deterministic under a [`ManualClock`])
/// or hand it to a background thread with [`Sampler::start`].
pub struct Sampler {
    registry: Registry,
    clock: Arc<dyn MonitorClock>,
    cfg: SamplerConfig,
    spec: HealthSpec,
    trace: Option<TraceId>,
    progress_base: u64,
    observer: Option<Observer>,
    state: Mutex<SamplerState>,
}

impl Sampler {
    /// New sampler over `registry`. Captures the currently attached
    /// [`TraceContext`]'s trace id (same registry only) so health
    /// events from the background thread still carry the run's trace,
    /// and the current value of the progress counter as the baseline.
    pub fn new(
        registry: &Registry,
        clock: Arc<dyn MonitorClock>,
        cfg: SamplerConfig,
        spec: HealthSpec,
    ) -> Sampler {
        let trace = TraceContext::current()
            .filter(|ctx| ctx.registry().same_as(registry))
            .map(|ctx| ctx.trace_id());
        let progress_base = cfg
            .progress
            .as_ref()
            .map(|p| registry.counter(&p.counter).get())
            .unwrap_or(0);
        Sampler {
            registry: registry.clone(),
            clock,
            cfg,
            spec,
            trace,
            progress_base,
            observer: None,
            state: Mutex::new(SamplerState::default()),
        }
    }

    /// Install a callback invoked after every tick (progress lines,
    /// live dashboards). Runs on the sampling thread; keep it cheap.
    pub fn with_observer(mut self, f: impl Fn(&TickReport) + Send + Sync + 'static) -> Sampler {
        self.observer = Some(Box::new(f));
        self
    }

    /// Take one sample now: read every metric, append points, evaluate
    /// health rules, and notify the observer. Deterministic given the
    /// clock readings and registry contents.
    pub fn tick(&self) -> TickReport {
        self.registry.counter("monitor.samples").incr();
        let t_ns = self.clock.now_ns();
        let counters = self.registry.counter_values();
        let hists = self.registry.histogram_totals();
        let gauges = self.registry.take_gauge_windows();

        let mut st = self.state.lock();
        st.ticks += 1;
        let tick = st.ticks;
        let dt_ns = st.last_t_ns.map(|p| t_ns.saturating_sub(p));
        st.last_t_ns = Some(t_ns);
        if st.first_t_ns.is_none() {
            st.first_t_ns = Some(t_ns);
        }
        let dt_s = dt_ns.map(|d| d as f64 / 1e9).filter(|d| *d > 0.0);
        let rate_of = |delta: f64| dt_s.map(|d| delta / d).unwrap_or(0.0);
        let capacity = self.cfg.capacity;

        for (name, v) in &counters {
            let seen = st.prev_counters.insert(name.clone(), *v).is_some();
            let value = *v as f64;
            let prev = match st
                .series
                .get(name)
                .and_then(Series::latest)
                .map(|p| p.value)
            {
                Some(p) if seen => p,
                _ => value, // baseline: no delta on first observation
            };
            let delta = value - prev;
            let point = SeriesPoint {
                tick,
                t_ns,
                value,
                delta,
                rate: rate_of(delta),
                lo: value,
                hi: value,
            };
            st.series
                .entry(name.clone())
                .or_insert_with(|| Series::new(name, SeriesKind::Counter, capacity))
                .push(point);
        }
        for (name, (count, sum)) in &hists {
            let prev = st.prev_hists.insert(name.clone(), (*count, *sum));
            let (dcount, dsum) = match prev {
                Some((pc, ps)) => (count.saturating_sub(pc), sum.saturating_sub(ps)),
                None => (0, 0), // baseline
            };
            let point = SeriesPoint {
                tick,
                t_ns,
                value: *count as f64,
                delta: dcount as f64,
                rate: rate_of(dcount as f64),
                lo: 0.0,
                hi: dsum as f64,
            };
            st.series
                .entry(name.clone())
                .or_insert_with(|| Series::new(name, SeriesKind::Histogram, capacity))
                .push(point);
        }
        for (name, w) in &gauges {
            let value = w.value as f64;
            let prev = st
                .series
                .get(name)
                .and_then(Series::latest)
                .map(|p| p.value)
                .unwrap_or(value);
            let delta = value - prev;
            let point = SeriesPoint {
                tick,
                t_ns,
                value,
                delta,
                rate: rate_of(delta),
                lo: w.lo as f64,
                hi: w.hi as f64,
            };
            st.series
                .entry(name.clone())
                .or_insert_with(|| Series::new(name, SeriesKind::Gauge, capacity))
                .push(point);
        }

        // Health rules see only this tick's fresh points.
        let mut fired: Vec<HealthEvent> = Vec::new();
        for rule in self.spec.rules() {
            let Some(point) = st
                .series
                .get(&rule.metric)
                .and_then(Series::latest)
                .filter(|p| p.tick == tick)
                .copied()
            else {
                continue;
            };
            let violation = match rule.cond {
                Condition::GaugeAbove(th) => (point.hi >= th as f64).then_some(point.hi),
                Condition::GaugeBelow(th) => (point.lo <= th as f64).then_some(point.lo),
                Condition::RateBelow(floor) => {
                    (dt_s.is_some() && point.rate < floor).then_some(point.rate)
                }
                Condition::RateAbove(ceil) => (point.rate > ceil).then_some(point.rate),
                Condition::StallFor(n) => {
                    let run = st.stall_runs.entry(rule.name.clone()).or_insert(0);
                    if point.delta == 0.0 {
                        *run += 1;
                    } else {
                        *run = 0;
                    }
                    (*run >= u64::from(n)).then_some(*run as f64)
                }
            };
            if let Some(observed) = violation {
                fired.push(HealthEvent {
                    tick,
                    t_ns,
                    rule: rule.name.clone(),
                    metric: rule.metric.clone(),
                    observed,
                    trace: self.trace.map(TraceId::as_u64),
                });
            }
        }
        st.events.extend(fired.iter().cloned());

        let progress = self.cfg.progress.as_ref().and_then(|target| {
            let point = st.series.get(&target.counter).and_then(Series::latest)?;
            let done = (point.value as u64).saturating_sub(self.progress_base);
            let elapsed_s = t_ns.saturating_sub(st.first_t_ns.unwrap_or(t_ns)) as f64 / 1e9;
            let rate = if elapsed_s > 0.0 {
                done as f64 / elapsed_s
            } else {
                0.0
            };
            let eta_s = (rate > 0.0).then(|| target.total.saturating_sub(done) as f64 / rate);
            Some(Progress {
                done: done.min(target.total),
                total: target.total,
                rate,
                eta_s,
            })
        });
        drop(st);

        // Counter emission happens outside the state lock so the only
        // lock order is state → registry maps, never the reverse.
        for ev in &fired {
            self.registry.counter("monitor.health.violations").incr();
            self.registry
                .counter(&format!("monitor.rule.{}", ev.rule))
                .incr();
        }

        let report = TickReport {
            tick,
            t_ns,
            progress,
        };
        if let Some(obs) = &self.observer {
            obs(&report);
        }
        report
    }

    /// Freeze the sampled state into a [`MonitorReport`].
    pub fn report(&self) -> MonitorReport {
        let st = self.state.lock();
        MonitorReport {
            ticks: st.ticks,
            series: st.series.values().cloned().collect(),
            events: st.events.clone(),
        }
    }

    /// Spawn a background thread ticking every `interval` until
    /// [`SamplerHandle::stop`] (or the handle's drop) signals it.
    pub fn start(self, interval: Duration) -> SamplerHandle {
        let sampler = Arc::new(self);
        let worker = Arc::clone(&sampler);
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let join = std::thread::spawn(move || {
            // Stop on a () send or a disconnected handle; tick on timeout.
            while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                worker.tick();
            }
        });
        SamplerHandle {
            sampler,
            stop_tx,
            join,
        }
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("rules", &self.spec.rules().len())
            .field("capacity", &self.cfg.capacity)
            .finish()
    }
}

/// Handle to a background sampler started by [`Sampler::start`].
pub struct SamplerHandle {
    sampler: Arc<Sampler>,
    stop_tx: mpsc::Sender<()>,
    join: std::thread::JoinHandle<()>,
}

impl SamplerHandle {
    /// Stop the background thread, take one final closing sample (so a
    /// run faster than the interval still yields ≥ 1 point per
    /// metric), and return the report.
    pub fn stop(self) -> MonitorReport {
        let _ = self.stop_tx.send(());
        let _ = self.join.join();
        self.sampler.tick();
        self.sampler.report()
    }
}

/// Load summary of one executor stage, from its
/// `executor.<pipeline>.<stage>.inflight` series.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLoad {
    /// Pipeline name.
    pub pipeline: String,
    /// Stage name.
    pub stage: String,
    /// Σ of per-window inflight high watermarks — a scheduling-free
    /// proxy for "windows this stage was busy, weighted by width".
    pub busy_integral: f64,
    /// Highest inflight watermark seen.
    pub peak_inflight: f64,
    /// Windows in which the stage had work in flight.
    pub busy_windows: u64,
    /// Total windows observed.
    pub windows: u64,
}

/// Queue-load summary of one scheduler tenant, from its
/// `sched.tenant.<tenant>.queued` series.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLoad {
    /// Sanitized tenant id.
    pub tenant: String,
    /// Σ of per-window queued-depth high watermarks — windows the
    /// tenant had work waiting, weighted by how much.
    pub queued_integral: f64,
    /// Highest queued-depth watermark seen.
    pub peak_queued: f64,
    /// Windows in which the tenant had queued work.
    pub backlogged_windows: u64,
    /// Total windows observed.
    pub windows: u64,
}

/// Post-run backpressure diagnosis; see [`MonitorReport::diagnose`].
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Busiest stage — the bottleneck candidate — if any stage showed
    /// in-flight work.
    pub bottleneck: Option<StageLoad>,
    /// All stages, busiest first.
    pub stages: Vec<StageLoad>,
    /// Highest `executor.queue_depth` watermark.
    pub peak_queue_depth: f64,
    /// Mean sampled `executor.queue_depth` level.
    pub mean_queue_depth: f64,
    /// Total producer stall time (`executor.stall_ns` sum), ns.
    pub total_stall_ns: u64,
    /// Windows in which producers spent > 1% of the window stalled.
    pub backpressure_windows: u64,
    /// Ticks the sampler observed.
    pub observed_ticks: u64,
    /// Health events recorded over the run.
    pub violations: usize,
    /// Scheduler tenants with queued-work series, most loaded first
    /// (empty when the run had no `sched.tenant.*.queued` series).
    pub tenants: Vec<TenantLoad>,
    /// The tenant driving scheduler saturation — the largest queued
    /// integral — if any tenant showed queued work.
    pub saturated_tenant: Option<TenantLoad>,
}

impl Diagnosis {
    /// Multi-line human rendering of the diagnosis.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "monitor diagnosis ({} samples)", self.observed_ticks);
        match &self.bottleneck {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "  bottleneck: {}.{} (busy integral {:.1}, peak inflight {:.0}, busy {}/{} windows)",
                    b.pipeline, b.stage, b.busy_integral, b.peak_inflight, b.busy_windows, b.windows
                );
            }
            None => {
                let _ = writeln!(out, "  bottleneck: none (no stage inflight series)");
            }
        }
        let _ = writeln!(
            out,
            "  queue depth: mean {:.2}, peak {:.0}",
            self.mean_queue_depth, self.peak_queue_depth
        );
        let _ = writeln!(
            out,
            "  backpressure: {} windows, total producer stall {:.3} ms",
            self.backpressure_windows,
            self.total_stall_ns as f64 / 1e6
        );
        if self.stages.len() > 1 {
            let _ = writeln!(out, "  stage loads:");
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "    {}.{}: busy integral {:.1}, peak {:.0}, busy {}/{}",
                    s.pipeline,
                    s.stage,
                    s.busy_integral,
                    s.peak_inflight,
                    s.busy_windows,
                    s.windows
                );
            }
        }
        if let Some(t) = &self.saturated_tenant {
            let _ = writeln!(
                out,
                "  saturated tenant: {} (queued integral {:.1}, peak {:.0}, backlogged {}/{} windows)",
                t.tenant, t.queued_integral, t.peak_queued, t.backlogged_windows, t.windows
            );
        }
        if self.tenants.len() > 1 {
            let _ = writeln!(out, "  tenant loads:");
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "    {}: queued integral {:.1}, peak {:.0}, backlogged {}/{}",
                    t.tenant, t.queued_integral, t.peak_queued, t.backlogged_windows, t.windows
                );
            }
        }
        let _ = writeln!(out, "  health: {} violation events", self.violations);
        out
    }
}

/// Everything a monitored run produced: tick count, the per-metric
/// ring buffers, and the health event log. Renders to and parses from
/// the `drai-monitor/v1` JSONL artifact.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Ticks the sampler took.
    pub ticks: u64,
    /// One series per sampled metric, in name order.
    pub series: Vec<Series>,
    /// Health events in firing order.
    pub events: Vec<HealthEvent>,
}

impl MonitorReport {
    /// The series for `name`, if sampled.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render the JSONL artifact. Line kinds: one `monitor` header,
    /// then per series a `series` line followed by its `point` lines
    /// (oldest first), then `health` lines. Numbers use Rust's
    /// shortest round-trip float rendering, so
    /// `parse_jsonl(to_jsonl(r))` re-renders byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"monitor\",\"format\":\"{}\",\"ticks\":{},\"series\":{},\"events\":{}}}",
            MONITOR_FORMAT,
            self.ticks,
            self.series.len(),
            self.events.len()
        );
        for s in &self.series {
            let _ = writeln!(
                out,
                "{{\"kind\":\"series\",\"metric\":\"{}\",\"metric_kind\":\"{}\",\"capacity\":{},\"points\":{}}}",
                crate::export::escape_json(&s.name),
                s.kind.as_str(),
                s.capacity(),
                s.len()
            );
            for p in s.iter() {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"point\",\"metric\":\"{}\",\"tick\":{},\"t_ns\":{},\"value\":{},\"delta\":{},\"rate\":{},\"lo\":{},\"hi\":{}}}",
                    crate::export::escape_json(&s.name),
                    p.tick,
                    p.t_ns,
                    fmt_num(p.value),
                    fmt_num(p.delta),
                    fmt_num(p.rate),
                    fmt_num(p.lo),
                    fmt_num(p.hi)
                );
            }
        }
        for e in &self.events {
            let trace = match e.trace {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "{{\"kind\":\"health\",\"tick\":{},\"t_ns\":{},\"rule\":\"{}\",\"metric\":\"{}\",\"observed\":{},\"trace\":{}}}",
                e.tick,
                e.t_ns,
                crate::export::escape_json(&e.rule),
                crate::export::escape_json(&e.metric),
                fmt_num(e.observed),
                trace
            );
        }
        out
    }

    /// Parse a `drai-monitor/v1` JSONL artifact produced by
    /// [`MonitorReport::to_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<MonitorReport, String> {
        let mut ticks = None;
        let mut series: Vec<Series> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
            match jstr(line, "kind").as_deref() {
                Some("monitor") => {
                    let format = jstr(line, "format").ok_or_else(|| at("missing format"))?;
                    if format != MONITOR_FORMAT {
                        return Err(at(&format!("unsupported format {format:?}")));
                    }
                    ticks = Some(ju64(line, "ticks").ok_or_else(|| at("missing ticks"))?);
                }
                Some("series") => {
                    let metric = jstr(line, "metric").ok_or_else(|| at("missing metric"))?;
                    let kind = jstr(line, "metric_kind")
                        .and_then(|k| SeriesKind::from_str(&k))
                        .ok_or_else(|| at("bad metric_kind"))?;
                    let capacity =
                        ju64(line, "capacity").ok_or_else(|| at("missing capacity"))? as usize;
                    index.insert(metric.clone(), series.len());
                    series.push(Series::new(&metric, kind, capacity));
                }
                Some("point") => {
                    let metric = jstr(line, "metric").ok_or_else(|| at("missing metric"))?;
                    let idx = *index
                        .get(&metric)
                        .ok_or_else(|| at("point before its series line"))?;
                    series[idx].push(SeriesPoint {
                        tick: ju64(line, "tick").ok_or_else(|| at("missing tick"))?,
                        t_ns: ju64(line, "t_ns").ok_or_else(|| at("missing t_ns"))?,
                        value: jf64(line, "value").ok_or_else(|| at("missing value"))?,
                        delta: jf64(line, "delta").ok_or_else(|| at("missing delta"))?,
                        rate: jf64(line, "rate").ok_or_else(|| at("missing rate"))?,
                        lo: jf64(line, "lo").ok_or_else(|| at("missing lo"))?,
                        hi: jf64(line, "hi").ok_or_else(|| at("missing hi"))?,
                    });
                }
                Some("health") => {
                    events.push(HealthEvent {
                        tick: ju64(line, "tick").ok_or_else(|| at("missing tick"))?,
                        t_ns: ju64(line, "t_ns").ok_or_else(|| at("missing t_ns"))?,
                        rule: jstr(line, "rule").ok_or_else(|| at("missing rule"))?,
                        metric: jstr(line, "metric").ok_or_else(|| at("missing metric"))?,
                        observed: jf64(line, "observed").ok_or_else(|| at("missing observed"))?,
                        trace: jraw(line, "trace")
                            .filter(|v| *v != "null")
                            .map(|v| v.parse::<u64>().map_err(|_| at("bad trace")))
                            .transpose()?,
                    });
                }
                Some(other) => return Err(at(&format!("unknown kind {other:?}"))),
                None => return Err(at("missing kind")),
            }
        }
        Ok(MonitorReport {
            ticks: ticks.ok_or("missing monitor header line")?,
            series,
            events,
        })
    }

    /// Read the executor series and name the bottleneck: the stage
    /// whose `executor.<pipeline>.<stage>.inflight` series has the
    /// largest busy integral (Σ per-window high watermarks). Also
    /// quantifies queue pressure and producer stall windows.
    pub fn diagnose(&self) -> Diagnosis {
        let mut stages: Vec<StageLoad> = Vec::new();
        for s in &self.series {
            let Some(mid) = s
                .name
                .strip_prefix("executor.")
                .and_then(|r| r.strip_suffix(".inflight"))
            else {
                continue;
            };
            let Some((pipeline, stage)) = mid.rsplit_once('.') else {
                continue;
            };
            let mut load = StageLoad {
                pipeline: pipeline.to_string(),
                stage: stage.to_string(),
                busy_integral: 0.0,
                peak_inflight: 0.0,
                busy_windows: 0,
                windows: 0,
            };
            for p in s.iter() {
                load.windows += 1;
                load.busy_integral += p.hi.max(0.0);
                load.peak_inflight = load.peak_inflight.max(p.hi);
                if p.hi > 0.0 {
                    load.busy_windows += 1;
                }
            }
            stages.push(load);
        }
        stages.sort_by(|a, b| {
            b.busy_integral
                .total_cmp(&a.busy_integral)
                .then_with(|| (a.pipeline.as_str(), a.stage.as_str()).cmp(&(&b.pipeline, &b.stage)))
        });
        let bottleneck = stages.first().filter(|s| s.busy_integral > 0.0).cloned();

        let (mut peak_q, mut sum_q, mut n_q) = (0.0f64, 0.0f64, 0u64);
        if let Some(q) = self.series_named("executor.queue_depth") {
            for p in q.iter() {
                peak_q = peak_q.max(p.hi);
                sum_q += p.value;
                n_q += 1;
            }
        }

        let (mut total_stall, mut bp_windows) = (0u64, 0u64);
        if let Some(st) = self.series_named("executor.stall_ns") {
            let mut prev_t: Option<u64> = None;
            for p in st.iter() {
                let stall = p.hi.max(0.0) as u64;
                total_stall += stall;
                let window_ns = prev_t.map(|t| p.t_ns.saturating_sub(t));
                let pressured = match window_ns {
                    Some(w) if w > 0 => stall as f64 > 0.01 * w as f64,
                    _ => stall > 0,
                };
                if pressured {
                    bp_windows += 1;
                }
                prev_t = Some(p.t_ns);
            }
        }

        // Scheduler tenant load: `sched.tenant.<t>.queued` series,
        // ranked by queued integral. The top entry names the tenant
        // saturating the scheduler (the drai-sched counterpart of the
        // executor bottleneck stage).
        let mut tenants: Vec<TenantLoad> = Vec::new();
        for s in &self.series {
            let Some(tenant) = s
                .name
                .strip_prefix("sched.tenant.")
                .and_then(|r| r.strip_suffix(".queued"))
            else {
                continue;
            };
            let mut load = TenantLoad {
                tenant: tenant.to_string(),
                queued_integral: 0.0,
                peak_queued: 0.0,
                backlogged_windows: 0,
                windows: 0,
            };
            for p in s.iter() {
                load.windows += 1;
                load.queued_integral += p.hi.max(0.0);
                load.peak_queued = load.peak_queued.max(p.hi);
                if p.hi > 0.0 {
                    load.backlogged_windows += 1;
                }
            }
            tenants.push(load);
        }
        tenants.sort_by(|a, b| {
            b.queued_integral
                .total_cmp(&a.queued_integral)
                .then_with(|| a.tenant.cmp(&b.tenant))
        });
        let saturated_tenant = tenants.first().filter(|t| t.queued_integral > 0.0).cloned();

        Diagnosis {
            bottleneck,
            stages,
            peak_queue_depth: peak_q,
            mean_queue_depth: if n_q > 0 { sum_q / n_q as f64 } else { 0.0 },
            total_stall_ns: total_stall,
            backpressure_windows: bp_windows,
            observed_ticks: self.ticks,
            violations: self.events.len(),
            tenants,
            saturated_tenant,
        }
    }
}

/// JSON number rendering for series values: shortest round-trip repr
/// for finite values ("3" / "0.25"), 0 for non-finite inputs (rates
/// are guarded against zero-width windows, so this is a backstop).
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Raw text of `"key":<value>` in a flat single-line JSON object.
/// Sufficient for the monitor schema: its string values (metric/rule
/// names, format tags) never contain `,`, `}`, or escapes.
fn jraw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn jstr(line: &str, key: &str) -> Option<String> {
    let raw = jraw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn ju64(line: &str, key: &str) -> Option<u64> {
    jraw(line, key)?.parse().ok()
}

fn jf64(line: &str, key: &str) -> Option<f64> {
    jraw(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_sampler(
        reg: &Registry,
        capacity: usize,
        spec: HealthSpec,
    ) -> (Sampler, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let sampler = Sampler::new(
            reg,
            clock.clone() as Arc<dyn MonitorClock>,
            SamplerConfig {
                capacity,
                progress: None,
            },
            spec,
        );
        (sampler, clock)
    }

    /// One scripted run: returns the rendered artifact.
    fn scripted_artifact() -> String {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(
            &reg,
            8,
            HealthSpec::new()
                .rule("deep", "work.depth", Condition::GaugeAbove(4))
                .rule("stalled", "work.done", Condition::StallFor(1)),
        );
        for i in 0..10u64 {
            if i % 3 != 2 {
                reg.counter("work.done").add(4);
            }
            reg.gauge("work.depth").set((i % 6) as i64);
            reg.histogram("work.lat").record(100 * (i + 1));
            clock.advance_ns(1_000_000);
            sampler.tick();
        }
        sampler.report().to_jsonl()
    }

    #[test]
    fn same_tick_sequence_is_bitwise_identical() {
        assert_eq!(scripted_artifact(), scripted_artifact());
    }

    #[test]
    fn counter_deltas_and_rates() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 8, HealthSpec::new());
        reg.counter("c.items").add(10);
        sampler.tick(); // baseline: delta 0 even though the counter predates us
        reg.counter("c.items").add(6);
        clock.advance_ns(2_000_000_000); // 2 s
        sampler.tick();
        let report = sampler.report();
        let s = report.series_named("c.items").unwrap();
        let pts: Vec<_> = s.iter().copied().collect();
        assert_eq!(s.kind, SeriesKind::Counter);
        assert_eq!(pts.len(), 2);
        assert_eq!((pts[0].value, pts[0].delta, pts[0].rate), (10.0, 0.0, 0.0));
        assert_eq!((pts[1].value, pts[1].delta, pts[1].rate), (16.0, 6.0, 3.0));
    }

    #[test]
    fn gauge_points_carry_window_watermarks() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 8, HealthSpec::new());
        let g = reg.gauge("q.depth");
        g.set(3);
        g.set(-2);
        g.set(1);
        clock.advance_ns(1);
        sampler.tick();
        // Spike and return entirely inside the second window.
        g.add(7);
        g.add(-7);
        clock.advance_ns(1);
        sampler.tick();
        let report = sampler.report();
        let pts: Vec<_> = report
            .series_named("q.depth")
            .unwrap()
            .iter()
            .copied()
            .collect();
        assert_eq!((pts[0].value, pts[0].lo, pts[0].hi), (1.0, -2.0, 3.0));
        assert_eq!((pts[1].value, pts[1].lo, pts[1].hi), (1.0, 1.0, 8.0));
        assert_eq!(pts[1].delta, 0.0, "level unchanged across the spike");
    }

    #[test]
    fn histogram_points_track_count_and_window_sum() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 8, HealthSpec::new());
        reg.histogram("h.ns").record(500);
        clock.advance_ns(1);
        sampler.tick(); // baseline
        reg.histogram("h.ns").record(200);
        reg.histogram("h.ns").record(300);
        clock.advance_ns(1);
        sampler.tick();
        let report = sampler.report();
        let pts: Vec<_> = report
            .series_named("h.ns")
            .unwrap()
            .iter()
            .copied()
            .collect();
        assert_eq!((pts[0].value, pts[0].delta, pts[0].hi), (1.0, 0.0, 0.0));
        assert_eq!((pts[1].value, pts[1].delta, pts[1].hi), (3.0, 2.0, 500.0));
    }

    #[test]
    fn ring_buffer_wraps_keeping_most_recent() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 4, HealthSpec::new());
        for i in 1..=10u64 {
            reg.counter("c.n").add(i);
            clock.advance_ns(1);
            sampler.tick();
        }
        let report = sampler.report();
        let s = report.series_named("c.n").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.capacity(), 4);
        let ticks: Vec<u64> = s.iter().map(|p| p.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9, 10], "oldest first after wrap");
        assert_eq!(s.latest().unwrap().tick, 10);
        // Values survived the wrap intact: cumulative sums 1..=k.
        let vals: Vec<f64> = s.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![28.0, 36.0, 45.0, 55.0]);
    }

    #[test]
    fn health_rules_fire_and_emit_counters() {
        let reg = Registry::new();
        let spec = HealthSpec::new()
            .rule("deep", "q.depth", Condition::GaugeAbove(5))
            .rule("stalled", "c.done", Condition::StallFor(2))
            .rule("slow", "c.done", Condition::RateBelow(1.0));
        let (sampler, clock) = manual_sampler(&reg, 8, spec);
        reg.counter("c.done").add(1);
        reg.gauge("q.depth").set(2);
        clock.advance_ns(1_000_000_000);
        sampler.tick(); // baseline: nothing fires (rate rules skip, stall run = 1 < 2)
                        // Tick 2: gauge spikes to 6 (fires deep), counter stalls (run 2 → fires
                        // stalled), rate 0 < 1 (fires slow).
        reg.gauge("q.depth").set(6);
        reg.gauge("q.depth").set(1);
        clock.advance_ns(1_000_000_000);
        sampler.tick();
        let report = sampler.report();
        let rules: Vec<&str> = report.events.iter().map(|e| e.rule.as_str()).collect();
        assert_eq!(rules, vec!["deep", "stalled", "slow"]);
        assert_eq!(report.events[0].observed, 6.0, "watermark, not final level");
        assert_eq!(report.events[1].observed, 2.0, "stall run length");
        assert_eq!(reg.counter("monitor.health.violations").get(), 3);
        assert_eq!(reg.counter("monitor.rule.deep").get(), 1);
        assert_eq!(reg.counter("monitor.rule.stalled").get(), 1);
        assert_eq!(reg.counter("monitor.rule.slow").get(), 1);
        assert_eq!(reg.counter("monitor.samples").get(), 2);
    }

    #[test]
    fn stall_run_resets_on_progress() {
        let reg = Registry::new();
        let spec = HealthSpec::new().rule("stalled", "c.done", Condition::StallFor(2));
        let (sampler, clock) = manual_sampler(&reg, 8, spec);
        reg.counter("c.done").incr();
        clock.advance_ns(1);
        sampler.tick(); // baseline, run = 1
        reg.counter("c.done").incr(); // progress resets the run
        clock.advance_ns(1);
        sampler.tick();
        clock.advance_ns(1);
        sampler.tick(); // run = 1
        clock.advance_ns(1);
        sampler.tick(); // run = 2 → fires
        let report = sampler.report();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].tick, 4);
    }

    #[test]
    fn health_events_carry_the_creating_trace() {
        let reg = Registry::new();
        let ctx = TraceContext::root(&reg);
        let _guard = ctx.attach();
        let spec = HealthSpec::new().rule("deep", "q.d", Condition::GaugeAbove(1));
        let (sampler, clock) = manual_sampler(&reg, 8, spec);
        reg.gauge("q.d").set(5);
        clock.advance_ns(1);
        sampler.tick();
        let report = sampler.report();
        assert_eq!(report.events[0].trace, Some(ctx.trace_id().as_u64()));
    }

    #[test]
    fn jsonl_round_trips_bitwise() {
        let text = scripted_artifact();
        let parsed = MonitorReport::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
        assert!(parsed.ticks == 10);
        assert!(!parsed.events.is_empty());
        assert!(parsed.series_named("work.depth").is_some());
        assert_eq!(
            parsed.series_named("monitor.samples").unwrap().kind,
            SeriesKind::Counter,
            "the sampler samples its own tick counter"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MonitorReport::parse_jsonl("").is_err(), "missing header");
        assert!(MonitorReport::parse_jsonl("{\"kind\":\"bogus\"}").is_err());
        let wrong_version =
            "{\"kind\":\"monitor\",\"format\":\"drai-monitor/v9\",\"ticks\":1,\"series\":0,\"events\":0}";
        assert!(MonitorReport::parse_jsonl(wrong_version).is_err());
        let orphan_point = format!(
            "{{\"kind\":\"monitor\",\"format\":\"{MONITOR_FORMAT}\",\"ticks\":1,\"series\":0,\"events\":0}}\n\
             {{\"kind\":\"point\",\"metric\":\"x.y\",\"tick\":1,\"t_ns\":0,\"value\":0,\"delta\":0,\"rate\":0,\"lo\":0,\"hi\":0}}"
        );
        assert!(MonitorReport::parse_jsonl(&orphan_point).is_err());
    }

    #[test]
    fn diagnosis_names_busiest_stage_and_counts_backpressure() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 64, HealthSpec::new());
        let fast = reg.gauge("executor.pipe.fast_stage.inflight");
        let slow = reg.gauge("executor.pipe.slow_stage.inflight");
        let q = reg.gauge("executor.queue_depth");
        let stall = reg.histogram("executor.stall_ns");
        for i in 0..10u64 {
            // The slow stage is busy every window; the fast one only twice.
            slow.add(1);
            slow.add(-1);
            if i < 2 {
                fast.add(1);
                fast.add(-1);
            }
            q.set(2);
            if i >= 5 {
                stall.record(900_000); // 90% of each 1 ms window
            }
            clock.advance_ns(1_000_000);
            sampler.tick();
        }
        let diag = sampler.report().diagnose();
        let b = diag.bottleneck.clone().expect("one stage was busy");
        assert_eq!(
            (b.pipeline.as_str(), b.stage.as_str()),
            ("pipe", "slow_stage")
        );
        assert_eq!(b.busy_windows, 10);
        assert_eq!(diag.stages.len(), 2);
        assert_eq!(diag.stages[1].stage, "fast_stage");
        assert_eq!(diag.stages[1].busy_windows, 2);
        assert_eq!(diag.peak_queue_depth, 2.0);
        assert_eq!(diag.total_stall_ns, 4_500_000);
        assert_eq!(diag.backpressure_windows, 5);
        let text = diag.render();
        assert!(text.contains("bottleneck: pipe.slow_stage"), "{text}");
    }

    #[test]
    fn empty_run_diagnosis_is_calm() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 8, HealthSpec::new());
        clock.advance_ns(1);
        sampler.tick();
        let diag = sampler.report().diagnose();
        assert!(diag.bottleneck.is_none());
        assert_eq!(diag.total_stall_ns, 0);
        assert_eq!(diag.violations, 0);
        assert!(diag.tenants.is_empty());
        assert!(diag.saturated_tenant.is_none());
        assert!(diag.render().contains("bottleneck: none"));
    }

    #[test]
    fn diagnosis_names_saturated_scheduler_tenant() {
        let reg = Registry::new();
        let (sampler, clock) = manual_sampler(&reg, 64, HealthSpec::new());
        let alpha = reg.gauge("sched.tenant.alpha.queued");
        let beta = reg.gauge("sched.tenant.beta.queued");
        for i in 0..8u64 {
            // alpha keeps a deep backlog every window; beta only early.
            alpha.add(5);
            alpha.add(-5);
            if i < 2 {
                beta.add(1);
                beta.add(-1);
            }
            clock.advance_ns(1_000_000);
            sampler.tick();
        }
        let diag = sampler.report().diagnose();
        let sat = diag.saturated_tenant.clone().expect("alpha was backlogged");
        assert_eq!(sat.tenant, "alpha");
        assert_eq!(sat.backlogged_windows, 8);
        assert_eq!(sat.peak_queued, 5.0);
        assert_eq!(diag.tenants.len(), 2);
        assert_eq!(diag.tenants[1].tenant, "beta");
        assert_eq!(diag.tenants[1].backlogged_windows, 2);
        let text = diag.render();
        assert!(text.contains("saturated tenant: alpha"), "{text}");
        assert!(text.contains("tenant loads:"), "{text}");
    }

    #[test]
    fn progress_reports_rate_and_eta() {
        let reg = Registry::new();
        let clock = Arc::new(ManualClock::new());
        let sampler = Sampler::new(
            &reg,
            clock.clone() as Arc<dyn MonitorClock>,
            SamplerConfig {
                capacity: 8,
                progress: Some(ProgressTarget {
                    counter: "job.done".into(),
                    total: 10,
                }),
            },
            HealthSpec::new(),
        );
        sampler.tick(); // t = 0 baseline: no rate yet
        reg.counter("job.done").add(4);
        clock.advance_ns(2_000_000_000);
        let report = sampler.tick();
        let p = report.progress.unwrap();
        assert_eq!((p.done, p.total), (4, 10));
        assert_eq!(p.rate, 2.0);
        assert_eq!(p.eta_s, Some(3.0));
        let line = p.render();
        assert!(line.contains("4/10 items (40%)"), "{line}");
        assert!(line.contains("ETA 3.0s"), "{line}");
    }

    #[test]
    fn progress_baseline_excludes_preexisting_count() {
        let reg = Registry::new();
        reg.counter("job.done").add(100); // earlier, unrelated work
        let clock = Arc::new(ManualClock::new());
        let sampler = Sampler::new(
            &reg,
            clock.clone() as Arc<dyn MonitorClock>,
            SamplerConfig {
                capacity: 8,
                progress: Some(ProgressTarget {
                    counter: "job.done".into(),
                    total: 5,
                }),
            },
            HealthSpec::new(),
        );
        reg.counter("job.done").add(3);
        clock.advance_ns(1_000_000_000);
        let p = sampler.tick().progress.unwrap();
        assert_eq!(p.done, 3, "baseline 100 must not count as progress");
    }

    #[test]
    fn background_sampler_ticks_and_stops() {
        let reg = Registry::new();
        let sampler = Sampler::new(
            &reg,
            Arc::new(WallMonitorClock::new()),
            SamplerConfig::default(),
            HealthSpec::new(),
        );
        let handle = sampler.start(Duration::from_millis(1));
        reg.counter("bg.work").add(7);
        std::thread::sleep(Duration::from_millis(10));
        let report = handle.stop();
        // The closing sample guarantees at least one tick even if the
        // interval never elapsed.
        assert!(report.ticks >= 1);
        let s = report.series_named("bg.work").expect("series recorded");
        assert_eq!(s.latest().unwrap().value, 7.0);
        assert_eq!(reg.counter("monitor.samples").get(), report.ticks);
    }

    #[test]
    fn observer_sees_every_tick() {
        let reg = Registry::new();
        let clock = Arc::new(ManualClock::new());
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let sampler = Sampler::new(
            &reg,
            clock.clone() as Arc<dyn MonitorClock>,
            SamplerConfig::default(),
            HealthSpec::new(),
        )
        .with_observer(move |tr| {
            seen2.fetch_max(tr.tick, Ordering::Relaxed);
        });
        for _ in 0..3 {
            clock.advance_ns(1);
            sampler.tick();
        }
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
