//! # drai-provenance
//!
//! Provenance capture for data-readiness pipelines — the paper's
//! "Provenance and Reproducibility" cross-cutting challenge ("establishing
//! traceable links between raw data, preprocessing steps, and trained
//! models"), in the spirit of OLCF's ProvEn.
//!
//! Three pieces:
//!
//! * [`Artifact`] — content-addressed data: an id derived from the bytes
//!   themselves, so identity survives renames and copies.
//! * [`Ledger`] — an append-only record of transformations: which
//!   operation, with which parameters, read which artifacts and produced
//!   which. The ledger is a DAG keyed by artifact id; [`Ledger::lineage`]
//!   walks it backwards to answer "exactly what produced this shard?".
//! * [`Ledger::verify_reproduction`] — replays a recorded transformation
//!   through a caller-supplied executor and checks the output digests
//!   match: the operational definition of a reproducible step.
//!
//! Serialization is JSONL (one event per line) through `drai-io`'s JSON
//! module, making audit logs greppable and appendable.
//!
//! Every recorded transformation is additionally stamped with the
//! telemetry [`TraceId`] current at [`Ledger::record`] time (when the
//! recording code runs under an entered span), linking each readiness
//! transition to the exported trace tree that timed it.

#![forbid(unsafe_code)]

use drai_io::checksum::{content_hash128, hash_hex};
use drai_io::json::Json;
use drai_telemetry::{TraceContext, TraceId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A content-addressed artifact reference.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactId(String);

impl ArtifactId {
    /// Id of the given content.
    pub fn of(content: &[u8]) -> ArtifactId {
        ArtifactId(hash_hex(&content_hash128(content)))
    }

    /// The hex digest.
    pub fn digest(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named artifact with its content id and size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Content-derived id.
    pub id: ArtifactId,
    /// Human-facing name (path, variable, shard name).
    pub name: String,
    /// Content size in bytes.
    pub bytes: u64,
}

impl Artifact {
    /// Register content under a name.
    pub fn new(name: &str, content: &[u8]) -> Artifact {
        Artifact {
            id: ArtifactId::of(content),
            name: name.to_string(),
            bytes: content.len() as u64,
        }
    }
}

/// One recorded transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transformation {
    /// Monotonic sequence number within the ledger.
    pub seq: u64,
    /// Operation name ("regrid", "normalize", "shard", ...).
    pub operation: String,
    /// Operation parameters, serialized deterministically.
    pub params: BTreeMap<String, String>,
    /// Input artifacts.
    pub inputs: Vec<Artifact>,
    /// Output artifacts.
    pub outputs: Vec<Artifact>,
    /// Telemetry trace active when this was recorded, if any — the key
    /// into the exported trace tree that timed this step.
    pub trace: Option<TraceId>,
}

impl Transformation {
    fn to_json(&self) -> Json {
        let art = |a: &Artifact| {
            Json::obj([
                ("id", Json::from(a.id.digest())),
                ("name", Json::from(a.name.clone())),
                ("bytes", Json::from(a.bytes)),
            ])
        };
        let mut fields = vec![
            ("seq", Json::from(self.seq)),
            ("operation", Json::from(self.operation.clone())),
            (
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.clone())))
                        .collect(),
                ),
            ),
            ("inputs", Json::Arr(self.inputs.iter().map(art).collect())),
            ("outputs", Json::Arr(self.outputs.iter().map(art).collect())),
        ];
        if let Some(trace) = self.trace {
            fields.push(("trace", Json::from(trace.as_u64())));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<Transformation, ProvenanceError> {
        let bad = |m: &str| ProvenanceError::Malformed(m.to_string());
        let arts = |key: &str| -> Result<Vec<Artifact>, ProvenanceError> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(&format!("missing {key}")))?
                .iter()
                .map(|a| {
                    Ok(Artifact {
                        id: ArtifactId(
                            a.get("id")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("artifact missing id"))?
                                .to_string(),
                        ),
                        name: a
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("artifact missing name"))?
                            .to_string(),
                        bytes: a
                            .get("bytes")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| bad("artifact missing bytes"))?,
                    })
                })
                .collect()
        };
        let mut params = BTreeMap::new();
        if let Some(obj) = v.get("params").and_then(Json::as_obj) {
            for (k, val) in obj {
                params.insert(
                    k.clone(),
                    val.as_str()
                        .ok_or_else(|| bad("param not a string"))?
                        .to_string(),
                );
            }
        }
        Ok(Transformation {
            seq: v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing seq"))?,
            operation: v
                .get("operation")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing operation"))?
                .to_string(),
            params,
            inputs: arts("inputs")?,
            outputs: arts("outputs")?,
            // Optional: audit logs from before trace stamping parse
            // with no trace attached.
            trace: v.get("trace").and_then(Json::as_u64).map(TraceId),
        })
    }
}

/// Provenance errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvenanceError {
    /// JSONL line could not be parsed.
    Malformed(String),
    /// Reproduction check failed: output digests differ.
    NotReproducible {
        /// The transformation's sequence number.
        seq: u64,
        /// Which output diverged.
        output: String,
    },
    /// Unknown artifact queried.
    UnknownArtifact(String),
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::Malformed(m) => write!(f, "malformed provenance: {m}"),
            ProvenanceError::NotReproducible { seq, output } => {
                write!(
                    f,
                    "transformation {seq} not reproducible: output {output} diverged"
                )
            }
            ProvenanceError::UnknownArtifact(id) => write!(f, "unknown artifact {id}"),
        }
    }
}

impl std::error::Error for ProvenanceError {}

/// Append-only transformation ledger with lineage queries.
///
/// Thread-safe: pipeline stages record concurrently.
#[derive(Debug, Default)]
pub struct Ledger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    transformations: Vec<Transformation>,
    /// artifact id → seq of the transformation that produced it.
    produced_by: BTreeMap<ArtifactId, u64>,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Record a transformation; returns its sequence number.
    ///
    /// The transformation is stamped with the [`TraceId`] of the
    /// thread's current [`TraceContext`], if one is attached — pipeline
    /// stage spans are entered while stage functions run, so stage-side
    /// `record` calls land in the stage's trace automatically.
    pub fn record(
        &self,
        operation: &str,
        params: impl IntoIterator<Item = (String, String)>,
        inputs: Vec<Artifact>,
        outputs: Vec<Artifact>,
    ) -> u64 {
        let trace = TraceContext::current().map(|ctx| ctx.trace_id());
        let mut inner = self.inner.lock();
        let seq = inner.transformations.len() as u64;
        for out in &outputs {
            inner.produced_by.insert(out.id.clone(), seq);
        }
        inner.transformations.push(Transformation {
            seq,
            operation: operation.to_string(),
            params: params.into_iter().collect(),
            inputs,
            outputs,
            trace,
        });
        seq
    }

    /// Number of recorded transformations.
    pub fn len(&self) -> usize {
        self.inner.lock().transformations.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The transformation that produced an artifact, if recorded.
    pub fn producer(&self, id: &ArtifactId) -> Option<Transformation> {
        let inner = self.inner.lock();
        inner
            .produced_by
            .get(id)
            .map(|&seq| inner.transformations[seq as usize].clone())
    }

    /// Full lineage of an artifact: every upstream transformation,
    /// deduplicated, ordered root-first (topological by construction,
    /// since the ledger is append-only).
    pub fn lineage(&self, id: &ArtifactId) -> Result<Vec<Transformation>, ProvenanceError> {
        let inner = self.inner.lock();
        let start = *inner
            .produced_by
            .get(id)
            .ok_or_else(|| ProvenanceError::UnknownArtifact(id.digest().to_string()))?;
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(seq) = queue.pop_front() {
            if !seen.insert(seq) {
                continue;
            }
            let t = &inner.transformations[seq as usize];
            for input in &t.inputs {
                if let Some(&parent) = inner.produced_by.get(&input.id) {
                    queue.push_back(parent);
                }
            }
        }
        Ok(seen
            .into_iter()
            .map(|seq| inner.transformations[seq as usize].clone())
            .collect())
    }

    /// Source artifacts (lineage inputs nothing in the ledger produced).
    pub fn roots(&self, id: &ArtifactId) -> Result<Vec<Artifact>, ProvenanceError> {
        let lineage = self.lineage(id)?;
        let inner = self.inner.lock();
        let mut roots = Vec::new();
        let mut seen = BTreeSet::new();
        for t in &lineage {
            for input in &t.inputs {
                if !inner.produced_by.contains_key(&input.id) && seen.insert(input.id.clone()) {
                    roots.push(input.clone());
                }
            }
        }
        Ok(roots)
    }

    /// Serialize the ledger as JSONL (one transformation per line).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for t in &inner.transformations {
            out.push_str(&t.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL audit log back into a ledger.
    pub fn from_jsonl(text: &str) -> Result<Ledger, ProvenanceError> {
        let ledger = Ledger::new();
        {
            let mut inner = ledger.inner.lock();
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v = Json::parse(line)
                    .map_err(|e| ProvenanceError::Malformed(format!("line {}: {e}", lineno + 1)))?;
                let t = Transformation::from_json(&v)?;
                if t.seq != inner.transformations.len() as u64 {
                    return Err(ProvenanceError::Malformed(format!(
                        "line {}: seq {} out of order",
                        lineno + 1,
                        t.seq
                    )));
                }
                for out in &t.outputs {
                    inner.produced_by.insert(out.id.clone(), t.seq);
                }
                inner.transformations.push(t);
            }
        }
        Ok(ledger)
    }

    /// Re-execute transformation `seq` via `execute` (which maps the
    /// recorded operation + params + input names to fresh output bytes)
    /// and verify every output digest matches the record.
    pub fn verify_reproduction(
        &self,
        seq: u64,
        execute: impl FnOnce(&Transformation) -> Vec<(String, Vec<u8>)>,
    ) -> Result<(), ProvenanceError> {
        let t = {
            let inner = self.inner.lock();
            inner
                .transformations
                .get(seq as usize)
                .cloned()
                .ok_or_else(|| ProvenanceError::Malformed(format!("no transformation {seq}")))?
        };
        let fresh = execute(&t);
        for out in &t.outputs {
            let matched = fresh
                .iter()
                .find(|(name, _)| *name == out.name)
                .map(|(_, bytes)| ArtifactId::of(bytes) == out.id)
                .unwrap_or(false);
            if !matched {
                return Err(ProvenanceError::NotReproducible {
                    seq,
                    output: out.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_ids_are_content_addressed() {
        let a = Artifact::new("x.nc", b"field data");
        let b = Artifact::new("renamed.nc", b"field data");
        let c = Artifact::new("x.nc", b"different");
        assert_eq!(a.id, b.id); // same content, same id
        assert_ne!(a.id, c.id);
        assert_eq!(a.bytes, 10);
        assert_eq!(a.id.digest().len(), 32);
    }

    fn three_step_ledger() -> (Ledger, Artifact, Artifact, Artifact, Artifact) {
        // raw → regrid → normalize → shard
        let ledger = Ledger::new();
        let raw = Artifact::new("raw.nc", b"raw bytes");
        let regridded = Artifact::new("regridded.npy", b"regridded bytes");
        let normalized = Artifact::new("normalized.npy", b"normalized bytes");
        let shard = Artifact::new("train-00000.shard", b"shard bytes");
        ledger.record(
            "regrid",
            [("target".to_string(), "64x128".to_string())],
            vec![raw.clone()],
            vec![regridded.clone()],
        );
        ledger.record(
            "normalize",
            [("method".to_string(), "zscore".to_string())],
            vec![regridded.clone()],
            vec![normalized.clone()],
        );
        ledger.record(
            "shard",
            [("target_bytes".to_string(), "1048576".to_string())],
            vec![normalized.clone()],
            vec![shard.clone()],
        );
        (ledger, raw, regridded, normalized, shard)
    }

    #[test]
    fn lineage_walks_to_root() {
        let (ledger, raw, _, _, shard) = three_step_ledger();
        let lineage = ledger.lineage(&shard.id).unwrap();
        assert_eq!(lineage.len(), 3);
        let ops: Vec<&str> = lineage.iter().map(|t| t.operation.as_str()).collect();
        assert_eq!(ops, vec!["regrid", "normalize", "shard"]);
        let roots = ledger.roots(&shard.id).unwrap();
        assert_eq!(roots, vec![raw]);
    }

    #[test]
    fn producer_lookup() {
        let (ledger, raw, regridded, _, _) = three_step_ledger();
        assert_eq!(ledger.producer(&regridded.id).unwrap().operation, "regrid");
        assert!(ledger.producer(&raw.id).is_none()); // raw is a root
        assert!(ledger.lineage(&raw.id).is_err());
    }

    #[test]
    fn diamond_lineage_deduplicates() {
        // raw → (a, b) → merged: the root transformation must appear once.
        let ledger = Ledger::new();
        let raw = Artifact::new("raw", b"r");
        let a = Artifact::new("a", b"a");
        let b = Artifact::new("b", b"b");
        let merged = Artifact::new("m", b"m");
        ledger.record("split", [], vec![raw.clone()], vec![a.clone(), b.clone()]);
        ledger.record("merge", [], vec![a, b], vec![merged.clone()]);
        let lineage = ledger.lineage(&merged.id).unwrap();
        assert_eq!(lineage.len(), 2);
        assert_eq!(ledger.roots(&merged.id).unwrap(), vec![raw]);
    }

    #[test]
    fn jsonl_round_trip() {
        let (ledger, _, _, _, shard) = three_step_ledger();
        let text = ledger.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = Ledger::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
        let lineage = back.lineage(&shard.id).unwrap();
        assert_eq!(lineage.len(), 3);
        assert_eq!(lineage[0].params.get("target"), Some(&"64x128".to_string()));
    }

    #[test]
    fn jsonl_rejects_garbage_and_bad_seq() {
        assert!(Ledger::from_jsonl("not json\n").is_err());
        let (ledger, ..) = three_step_ledger();
        let text = ledger.to_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(0, 2); // out-of-order seq
        assert!(Ledger::from_jsonl(&lines.join("\n")).is_err());
    }

    #[test]
    fn reproduction_verified() {
        let (ledger, ..) = three_step_ledger();
        // Exact replay reproduces.
        ledger
            .verify_reproduction(1, |t| {
                assert_eq!(t.operation, "normalize");
                vec![("normalized.npy".to_string(), b"normalized bytes".to_vec())]
            })
            .unwrap();
        // Divergent replay caught.
        let err = ledger
            .verify_reproduction(1, |_| {
                vec![("normalized.npy".to_string(), b"DIFFERENT".to_vec())]
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ProvenanceError::NotReproducible { seq: 1, .. }
        ));
        // Missing output caught.
        assert!(ledger.verify_reproduction(1, |_| vec![]).is_err());
        // Unknown seq.
        assert!(ledger.verify_reproduction(99, |_| vec![]).is_err());
    }

    #[test]
    fn records_stamp_current_trace_and_round_trip() {
        use drai_telemetry::Registry;
        let ledger = Ledger::new();
        // Outside any context: no trace.
        ledger.record("bare", [], vec![], vec![Artifact::new("a", b"a")]);
        // Under an entered span: stamped with the span's trace.
        let reg = Registry::new();
        let span = reg.span("stage.record");
        let expected = span.trace_id();
        {
            let _in_span = span.enter();
            ledger.record("traced", [], vec![], vec![Artifact::new("b", b"b")]);
        }
        let text = ledger.to_jsonl();
        let back = Ledger::from_jsonl(&text).unwrap();
        let bare = back.producer(&ArtifactId::of(b"a")).unwrap();
        let traced = back.producer(&ArtifactId::of(b"b")).unwrap();
        assert_eq!(bare.trace, None);
        assert_eq!(traced.trace, Some(expected));
        // Pre-stamping audit logs (no "trace" key) still parse.
        assert!(!text.lines().next().unwrap().contains("\"trace\""));
    }

    #[test]
    fn concurrent_recording() {
        let ledger = Ledger::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let ledger = &ledger;
                s.spawn(move || {
                    for i in 0..25 {
                        let input = Artifact::new(&format!("in-{t}-{i}"), &[t, i]);
                        let output = Artifact::new(&format!("out-{t}-{i}"), &[t, i, 99]);
                        ledger.record("op", [], vec![input], vec![output]);
                    }
                });
            }
        });
        assert_eq!(ledger.len(), 200);
        // Sequence numbers are unique and dense.
        let text = ledger.to_jsonl();
        let back = Ledger::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 200);
    }
}
