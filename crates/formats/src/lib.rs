//! # drai-formats
//!
//! Scientific container formats implemented from scratch — no C library
//! bindings. These are the formats the DRAI paper's archetype workflows
//! read and write:
//!
//! | Module | Format | Used by |
//! |---|---|---|
//! | [`npy`] | NumPy NPY v1.0 (byte-compatible) | climate shards (ClimaX-style `.npz`) |
//! | [`zip`] | STORE-mode ZIP with CRC-32 | NPZ container |
//! | [`tfrecord`] | TFRecord framing with masked CRC-32C (byte-compatible) | fusion shards (DIII-D-style) |
//! | [`protowire`] / [`example`] | protobuf wire format + `tf.train.Example` | TFRecord payloads |
//! | [`netcdf`] | NetCDF-3 classic (CDF-1, byte-compatible subset) | climate ingest |
//! | [`grib`] | GRIB-style sectioned messages with simple packing | climate ingest |
//! | [`h5lite`] | hierarchical groups + chunked typed datasets (own format) | bio secure shards |
//! | [`bp`] | ADIOS-BP-inspired process-group log (own format) | materials shards |
//! | [`fasta`] | FASTA/FASTQ sequence files | bio ingest |
//! | [`xyz`] | extended XYZ structure files | materials ingest |
//! | [`csv`] | RFC-4180 CSV | tabular ingest (EHR) |
//!
//! Byte-compatibility claims are enforced by tests against reference byte
//! vectors. `h5lite` and `bp` are *inspired by* HDF5 and ADIOS-BP: they
//! reproduce the structural essentials (hierarchy + chunking; append-only
//! process groups + footer index) in a clean-room format, as documented in
//! DESIGN.md's substitution table.

#![forbid(unsafe_code)]

pub mod bp;
pub(crate) mod bytes;
pub mod csv;
pub mod example;
pub mod fasta;
pub mod grib;
pub mod h5lite;
pub mod netcdf;
pub mod npy;
pub mod protowire;
pub mod tfrecord;
pub mod xyz;
pub mod zip;

/// Errors shared by the format implementations.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O layer failure.
    Io(drai_io::IoError),
    /// Structural problem: bad magic, truncation, invalid field.
    Malformed {
        /// Which format detected the problem.
        format: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The format is valid but uses a feature this implementation does not
    /// support (e.g. NPY v2 headers, compressed ZIP members).
    Unsupported {
        /// Which format.
        format: &'static str,
        /// The unsupported feature.
        detail: String,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "{e}"),
            FormatError::Malformed { format, detail } => {
                write!(f, "malformed {format}: {detail}")
            }
            FormatError::Unsupported { format, detail } => {
                write!(f, "unsupported {format} feature: {detail}")
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drai_io::IoError> for FormatError {
    fn from(e: drai_io::IoError) -> Self {
        FormatError::Io(e)
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(drai_io::IoError::Os(e))
    }
}

pub(crate) fn malformed(format: &'static str, detail: impl Into<String>) -> FormatError {
    FormatError::Malformed {
        format,
        detail: detail.into(),
    }
}

pub(crate) fn unsupported(format: &'static str, detail: impl Into<String>) -> FormatError {
    FormatError::Unsupported {
        format,
        detail: detail.into(),
    }
}
