//! GRIB-style encoded gridded binary messages with simple packing.
//!
//! GRIB ("GRIdded Binary", WMO) is the encoded — as opposed to
//! self-describing — climate format the paper contrasts with NetCDF. A real
//! GRIB2 file is a sequence of sectioned messages whose data section stores
//! field values *packed*: each value quantized as
//!
//! ```text
//! value = reference + (packed << binary_scale) / 10^decimal_scale
//! ```
//!
//! with `packed` a fixed-width integer chosen from the field's dynamic
//! range. This module implements that encoding faithfully — sectioned
//! framing ("DRIB" magic to avoid masquerading as real WMO output,
//! identical structure), big-endian section lengths, simple packing with
//! configurable bits-per-value, and an end marker — because *unpacking* is
//! exactly the preprocessing cost the climate ingest stage pays.

use crate::bytes::{arr4, arr8};
use crate::{malformed, FormatError};
use drai_io::codec::{bitpack, bitunpack};

const MAGIC: &[u8; 4] = b"DRIB";
const END: &[u8; 4] = b"7777";

/// One gridded field message.
#[derive(Debug, Clone, PartialEq)]
pub struct GribMessage {
    /// Short parameter name (e.g. "tas", "psl"), ≤ 255 bytes.
    pub parameter: String,
    /// Grid rows (latitude points).
    pub nlat: u32,
    /// Grid columns (longitude points).
    pub nlon: u32,
    /// Forecast/valid time as an offset in hours.
    pub time_hours: u32,
    /// Field values, row-major `[nlat, nlon]`.
    pub values: Vec<f64>,
}

/// Packing parameters for the data section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packing {
    /// Bits per packed value (1..=32). More bits, less quantization error.
    pub bits: u32,
}

impl Default for Packing {
    fn default() -> Self {
        Packing { bits: 16 }
    }
}

impl Packing {
    /// Maximum representable packed value.
    fn max_packed(&self) -> u64 {
        (1u64 << self.bits) - 1
    }
}

/// Encode one message.
///
/// Simple packing: `reference = min(values)`, scale chosen so the span
/// fits in `bits`. NaNs are encoded via a bitmap section (presence mask),
/// mirroring GRIB's bitmap section 6.
pub fn encode_message(msg: &GribMessage, packing: Packing) -> Result<Vec<u8>, FormatError> {
    assert!(
        (1..=32).contains(&packing.bits),
        "packing bits must be 1..=32"
    );
    let expect = (msg.nlat as usize) * (msg.nlon as usize);
    if msg.values.len() != expect {
        return Err(malformed(
            "grib",
            format!(
                "{} values for {}x{} grid",
                msg.values.len(),
                msg.nlat,
                msg.nlon
            ),
        ));
    }

    let present: Vec<bool> = msg.values.iter().map(|v| !v.is_nan()).collect();
    let finite: Vec<f64> = msg.values.iter().copied().filter(|v| !v.is_nan()).collect();
    let (reference, scale) = if finite.is_empty() {
        (0.0, 1.0)
    } else {
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(0.0);
        let scale = if span == 0.0 {
            1.0
        } else {
            span / packing.max_packed() as f64
        };
        (min, scale)
    };

    let packed: Vec<u64> = finite
        .iter()
        .map(|&v| {
            let q = ((v - reference) / scale).round();
            (q.max(0.0) as u64).min(packing.max_packed())
        })
        .collect();

    let mut out = Vec::new();
    // Section 0: indicator.
    out.extend_from_slice(MAGIC);

    // Section 1: identification (parameter, grid, time).
    let mut s1 = Vec::new();
    s1.push(msg.parameter.len() as u8);
    s1.extend_from_slice(msg.parameter.as_bytes());
    s1.extend_from_slice(&msg.nlat.to_be_bytes());
    s1.extend_from_slice(&msg.nlon.to_be_bytes());
    s1.extend_from_slice(&msg.time_hours.to_be_bytes());
    write_section(&mut out, 1, &s1);

    // Section 6-style bitmap (only when values are missing).
    let any_missing = present.iter().any(|&p| !p);
    if any_missing {
        let bits: Vec<u64> = present.iter().map(|&p| p as u64).collect();
        write_section(&mut out, 6, &bitpack(&bits, 1));
    }

    // Section 7: data (reference f64be, scale f64be, bits u8, count u32be,
    // packed payload).
    let mut s7 = Vec::new();
    s7.extend_from_slice(&reference.to_be_bytes());
    s7.extend_from_slice(&scale.to_be_bytes());
    s7.push(packing.bits as u8);
    s7.extend_from_slice(&(packed.len() as u32).to_be_bytes());
    s7.extend_from_slice(&bitpack(&packed, packing.bits));
    write_section(&mut out, 7, &s7);

    // Section 8: end.
    out.extend_from_slice(END);
    Ok(out)
}

fn write_section(out: &mut Vec<u8>, number: u8, body: &[u8]) {
    // Length covers the 5-byte section header too (GRIB convention).
    out.extend_from_slice(&((body.len() + 5) as u32).to_be_bytes());
    out.push(number);
    out.extend_from_slice(body);
}

/// Decode one message starting at the front of `bytes`. Returns the message
/// and the total bytes consumed (messages are typically concatenated).
pub fn decode_message(bytes: &[u8]) -> Result<(GribMessage, usize), FormatError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(malformed("grib", "bad indicator"));
    }
    let mut pos = 4;
    let mut parameter = String::new();
    let mut nlat = 0u32;
    let mut nlon = 0u32;
    let mut time_hours = 0u32;
    let mut bitmap: Option<Vec<bool>> = None;
    let mut data: Option<(f64, f64, u32, usize, Vec<u8>)> = None;

    loop {
        if bytes.len() >= pos + 4 && &bytes[pos..pos + 4] == END {
            pos += 4;
            break;
        }
        if bytes.len() < pos + 5 {
            return Err(malformed("grib", "truncated section header"));
        }
        let len = u32::from_be_bytes(arr4(&bytes[pos..pos + 4])) as usize;
        let number = bytes[pos + 4];
        if len < 5 || bytes.len() < pos + len {
            return Err(malformed("grib", "truncated section body"));
        }
        let body = &bytes[pos + 5..pos + len];
        match number {
            1 => {
                if body.is_empty() {
                    return Err(malformed("grib", "empty identification"));
                }
                let plen = body[0] as usize;
                if body.len() < 1 + plen + 12 {
                    return Err(malformed("grib", "short identification"));
                }
                parameter = std::str::from_utf8(&body[1..1 + plen])
                    .map_err(|_| malformed("grib", "non-UTF-8 parameter"))?
                    .to_string();
                let at = 1 + plen;
                nlat = u32::from_be_bytes(arr4(&body[at..at + 4]));
                nlon = u32::from_be_bytes(arr4(&body[at + 4..at + 8]));
                time_hours = u32::from_be_bytes(arr4(&body[at + 8..at + 12]));
            }
            6 => {
                let n = (nlat as usize) * (nlon as usize);
                let bits = bitunpack(body, 1, n).map_err(|_| malformed("grib", "short bitmap"))?;
                bitmap = Some(bits.into_iter().map(|b| b != 0).collect());
            }
            7 => {
                if body.len() < 21 {
                    return Err(malformed("grib", "short data section"));
                }
                let reference = f64::from_be_bytes(arr8(&body[..8]));
                let scale = f64::from_be_bytes(arr8(&body[8..16]));
                let bits = body[16] as u32;
                if !(1..=32).contains(&bits) {
                    return Err(malformed("grib", "bad packing width"));
                }
                let count = u32::from_be_bytes(arr4(&body[17..21])) as usize;
                data = Some((reference, scale, bits, count, body[21..].to_vec()));
            }
            _ => {} // unknown sections skipped, per GRIB practice
        }
        pos += len;
    }

    let n = (nlat as usize) * (nlon as usize);
    let (reference, scale, bits, count, payload) =
        data.ok_or_else(|| malformed("grib", "no data section"))?;
    let packed =
        bitunpack(&payload, bits, count).map_err(|_| malformed("grib", "short data payload"))?;
    let unpacked: Vec<f64> = packed
        .iter()
        .map(|&q| reference + q as f64 * scale)
        .collect();

    let values = match bitmap {
        None => {
            if count != n {
                return Err(malformed("grib", "count/grid mismatch"));
            }
            unpacked
        }
        Some(mask) => {
            if mask.len() != n {
                return Err(malformed("grib", "bitmap/grid mismatch"));
            }
            if mask.iter().filter(|&&p| p).count() != count {
                return Err(malformed("grib", "bitmap/count mismatch"));
            }
            let mut it = unpacked.into_iter();
            let mut values = Vec::with_capacity(mask.len());
            for &present in &mask {
                let v = if present {
                    it.next()
                        .ok_or_else(|| malformed("grib", "bitmap/count mismatch"))?
                } else {
                    f64::NAN
                };
                values.push(v);
            }
            values
        }
    };

    Ok((
        GribMessage {
            parameter,
            nlat,
            nlon,
            time_hours,
            values,
        },
        pos,
    ))
}

/// Decode a concatenated stream of messages.
pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<GribMessage>, FormatError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (msg, used) = decode_message(bytes)?;
        out.push(msg);
        bytes = &bytes[used..];
    }
    Ok(out)
}

/// Worst-case quantization error of simple packing for a value span.
pub fn quantization_error(span: f64, packing: Packing) -> f64 {
    span / (packing.max_packed() as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(nlat: u32, nlon: u32) -> GribMessage {
        let values = (0..nlat * nlon)
            .map(|i| 250.0 + 40.0 * ((i as f64) * 0.13).sin())
            .collect();
        GribMessage {
            parameter: "tas".into(),
            nlat,
            nlon,
            time_hours: 6,
            values,
        }
    }

    #[test]
    fn round_trip_within_quantization() {
        let msg = field(16, 32);
        for bits in [8u32, 12, 16, 24] {
            let packing = Packing { bits };
            let bytes = encode_message(&msg, packing).unwrap();
            let (back, used) = decode_message(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back.parameter, "tas");
            assert_eq!((back.nlat, back.nlon, back.time_hours), (16, 32, 6));
            let tol = quantization_error(80.0, packing) * 1.01 + 1e-12;
            for (a, b) in back.values.iter().zip(&msg.values) {
                assert!((a - b).abs() <= tol, "bits={bits}: {a} vs {b} tol={tol}");
            }
        }
    }

    #[test]
    fn higher_bits_lower_error() {
        let msg = field(8, 16);
        let err = |bits| {
            let bytes = encode_message(&msg, Packing { bits }).unwrap();
            let (back, _) = decode_message(&bytes).unwrap();
            back.values
                .iter()
                .zip(&msg.values)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(8) > err(16));
        assert!(err(16) > err(24));
    }

    #[test]
    fn constant_field_exact() {
        let msg = GribMessage {
            parameter: "psl".into(),
            nlat: 4,
            nlon: 4,
            time_hours: 0,
            values: vec![101_325.0; 16],
        };
        let bytes = encode_message(&msg, Packing::default()).unwrap();
        let (back, _) = decode_message(&bytes).unwrap();
        assert_eq!(back.values, msg.values);
    }

    #[test]
    fn missing_values_via_bitmap() {
        let mut msg = field(4, 8);
        msg.values[3] = f64::NAN;
        msg.values[17] = f64::NAN;
        let bytes = encode_message(&msg, Packing { bits: 16 }).unwrap();
        let (back, _) = decode_message(&bytes).unwrap();
        assert!(back.values[3].is_nan());
        assert!(back.values[17].is_nan());
        assert!(!back.values[0].is_nan());
        let finite = back.values.iter().filter(|v| !v.is_nan()).count();
        assert_eq!(finite, 30);
    }

    #[test]
    fn all_missing() {
        let msg = GribMessage {
            parameter: "x".into(),
            nlat: 2,
            nlon: 2,
            time_hours: 0,
            values: vec![f64::NAN; 4],
        };
        let bytes = encode_message(&msg, Packing::default()).unwrap();
        let (back, _) = decode_message(&bytes).unwrap();
        assert!(back.values.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn stream_of_messages() {
        let mut stream = Vec::new();
        let mut msgs = Vec::new();
        for t in 0..5 {
            let mut m = field(4, 4);
            m.time_hours = t * 6;
            stream.extend(encode_message(&m, Packing { bits: 20 }).unwrap());
            msgs.push(m);
        }
        let decoded = decode_stream(&stream).unwrap();
        assert_eq!(decoded.len(), 5);
        for (d, m) in decoded.iter().zip(&msgs) {
            assert_eq!(d.time_hours, m.time_hours);
        }
    }

    #[test]
    fn packing_compresses_vs_f64() {
        let msg = field(32, 64);
        let bytes = encode_message(&msg, Packing { bits: 16 }).unwrap();
        let raw_size = msg.values.len() * 8;
        assert!(
            bytes.len() < raw_size / 3,
            "packed {} vs raw {raw_size}",
            bytes.len()
        );
    }

    #[test]
    fn malformed_rejected() {
        let msg = field(4, 4);
        let bytes = encode_message(&msg, Packing::default()).unwrap();
        assert!(decode_message(&bytes[..bytes.len() - 5]).is_err()); // no end
        assert!(decode_message(b"GRIB").is_err()); // real WMO magic ≠ ours
        assert!(decode_message(&bytes[..10]).is_err());
        let wrong = GribMessage {
            values: vec![1.0; 3],
            ..field(2, 2)
        };
        assert!(encode_message(&wrong, Packing::default()).is_err());
    }
}
