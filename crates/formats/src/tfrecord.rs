//! TFRecord file framing, byte-compatible with TensorFlow's spec.
//!
//! Each record is framed as:
//!
//! ```text
//! u64le  length
//! u32le  masked_crc32c(length bytes)
//! bytes  data[length]
//! u32le  masked_crc32c(data)
//! ```
//!
//! where the mask is `rotr(crc, 15) + 0xa282ead8` (see
//! [`drai_io::masked_crc32c`]). The fusion archetype writes windows of
//! diagnostic features as [`crate::example::Example`] payloads in this
//! framing, which real TensorFlow tooling can read.

use crate::bytes::{arr4, arr8};
use crate::{malformed, FormatError};
use drai_io::checksum::masked_crc32c;

/// Append one framed record to `out`.
pub fn write_record(out: &mut Vec<u8>, data: &[u8]) {
    let len = (data.len() as u64).to_le_bytes();
    out.extend_from_slice(&len);
    out.extend_from_slice(&masked_crc32c(&len).to_le_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(&masked_crc32c(data).to_le_bytes());
}

/// Serialize a whole record stream.
pub fn write_records<I, B>(records: I) -> Vec<u8>
where
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    let mut out = Vec::new();
    for r in records {
        write_record(&mut out, r.as_ref());
    }
    out
}

/// Iterator over records in a TFRecord byte stream, verifying both CRCs.
pub struct TfRecordReader<'a> {
    data: &'a [u8],
    pos: usize,
    index: usize,
}

impl<'a> TfRecordReader<'a> {
    /// Reader over a complete in-memory TFRecord file.
    pub fn new(data: &'a [u8]) -> Self {
        TfRecordReader {
            data,
            pos: 0,
            index: 0,
        }
    }
}

impl<'a> Iterator for TfRecordReader<'a> {
    type Item = Result<&'a [u8], FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos == self.data.len() {
            return None;
        }
        let i = self.index;
        self.index += 1;
        let fail = |msg: String| Some(Err(malformed("tfrecord", msg)));
        if self.pos + 12 > self.data.len() {
            self.pos = self.data.len();
            return fail(format!("record {i}: truncated length header"));
        }
        let len_bytes = &self.data[self.pos..self.pos + 8];
        let len = u64::from_le_bytes(arr8(len_bytes)) as usize;
        let len_crc = u32::from_le_bytes(arr4(&self.data[self.pos + 8..self.pos + 12]));
        if masked_crc32c(len_bytes) != len_crc {
            self.pos = self.data.len();
            return fail(format!("record {i}: length CRC mismatch"));
        }
        let data_start = self.pos + 12;
        if data_start + len + 4 > self.data.len() {
            self.pos = self.data.len();
            return fail(format!("record {i}: truncated payload"));
        }
        let payload = &self.data[data_start..data_start + len];
        let data_crc = u32::from_le_bytes(arr4(&self.data[data_start + len..data_start + len + 4]));
        if masked_crc32c(payload) != data_crc {
            self.pos = self.data.len();
            return fail(format!("record {i}: payload CRC mismatch"));
        }
        self.pos = data_start + len + 4;
        Some(Ok(payload))
    }
}

/// Read all records, failing on the first corrupt one.
pub fn read_records(data: &[u8]) -> Result<Vec<Vec<u8>>, FormatError> {
    TfRecordReader::new(data)
        .map(|r| r.map(|s| s.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_is_byte_exact() {
        // A record of b"abc": length 3 as u64le, masked CRCs per spec.
        let mut out = Vec::new();
        write_record(&mut out, b"abc");
        assert_eq!(out.len(), 8 + 4 + 3 + 4);
        assert_eq!(&out[..8], &3u64.to_le_bytes());
        // Masked CRC of the length bytes (computed with the verified
        // crc32c implementation; locks in the rot-and-add mask).
        let len_crc = u32::from_le_bytes(out[8..12].try_into().unwrap());
        assert_eq!(len_crc, masked_crc32c(&3u64.to_le_bytes()));
        assert_eq!(&out[12..15], b"abc");
        let data_crc = u32::from_le_bytes(out[15..19].try_into().unwrap());
        assert_eq!(data_crc, masked_crc32c(b"abc"));
    }

    #[test]
    fn round_trip_many() {
        let records: Vec<Vec<u8>> = (0..50)
            .map(|i| (0..i * 3).map(|j| (j % 256) as u8).collect())
            .collect();
        let bytes = write_records(&records);
        assert_eq!(read_records(&bytes).unwrap(), records);
    }

    #[test]
    fn empty_stream_and_empty_record() {
        assert!(read_records(&[]).unwrap().is_empty());
        let bytes = write_records([b"".as_slice()]);
        assert_eq!(read_records(&bytes).unwrap(), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut bytes = write_records([b"hello world".as_slice()]);
        bytes[14] ^= 1;
        assert!(read_records(&bytes).is_err());
    }

    #[test]
    fn corrupt_length_detected() {
        let mut bytes = write_records([b"hello".as_slice()]);
        bytes[0] ^= 1; // length now 4, CRC won't match
        assert!(read_records(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_records([b"hello".as_slice(), b"world".as_slice()]);
        assert!(read_records(&bytes[..bytes.len() - 2]).is_err());
        assert!(read_records(&bytes[..5]).is_err());
    }

    #[test]
    fn reader_stops_after_error() {
        let mut bytes = write_records([b"a".as_slice(), b"b".as_slice()]);
        bytes[12] ^= 1;
        let mut reader = TfRecordReader::new(&bytes);
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn examples_in_tfrecords() {
        use crate::example::Example;
        let examples: Vec<Example> = (0..10)
            .map(|i| {
                Example::new()
                    .with_floats("x", vec![i as f32; 16])
                    .with_ints("y", vec![i])
            })
            .collect();
        let bytes = write_records(examples.iter().map(|e| e.encode()));
        let decoded: Vec<Example> = read_records(&bytes)
            .unwrap()
            .iter()
            .map(|r| Example::decode(r).unwrap())
            .collect();
        assert_eq!(decoded, examples);
    }
}
