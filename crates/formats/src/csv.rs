//! RFC-4180 CSV parsing and writing for tabular (EHR-style) ingest.
//!
//! Handles quoted fields, embedded commas/newlines/quotes, and CRLF
//! endings. The bio archetype's synthetic clinical tables arrive through
//! this module before anonymization.

use crate::{malformed, FormatError};

/// A parsed CSV table: header plus rows (all fields as strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the first row.
    pub header: Vec<String>,
    /// Data rows; every row has `header.len()` fields.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// All values of a named column.
    pub fn column(&self, name: &str) -> Option<Vec<&str>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[i].as_str()).collect())
    }

    /// Parse a column as f64, with empty fields → NaN (the missing-value
    /// convention consumed by the imputation kernels).
    pub fn numeric_column(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.column_index(name)?;
        Some(
            self.rows
                .iter()
                .map(|r| {
                    let s = r[i].trim();
                    if s.is_empty() {
                        f64::NAN
                    } else {
                        s.parse().unwrap_or(f64::NAN)
                    }
                })
                .collect(),
        )
    }
}

/// Parse CSV text with a header row.
pub fn parse_csv(text: &str) -> Result<CsvTable, FormatError> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(malformed("csv", "empty input (no header)"));
    }
    let header = records.remove(0);
    for (i, row) in records.iter().enumerate() {
        if row.len() != header.len() {
            return Err(malformed(
                "csv",
                format!(
                    "row {} has {} fields, header has {}",
                    i + 1,
                    row.len(),
                    header.len()
                ),
            ));
        }
    }
    Ok(CsvTable {
        header,
        rows: records,
    })
}

fn parse_records(text: &str) -> Result<Vec<Vec<String>>, FormatError> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(malformed("csv", "quote inside unquoted field"));
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(malformed("csv", "unterminated quoted field"));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop fully empty trailing records produced by blank lines.
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

/// Write a table as CSV (quoting only where required).
pub fn write_csv(table: &CsvTable) -> String {
    let mut out = String::new();
    let write_row = |out: &mut String, row: &[String]| {
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if needs_quoting(f) {
                out.push('"');
                out.push_str(&f.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(f);
            }
        }
        out.push('\n');
    };
    write_row(&mut out, &table.header);
    for row in &table.rows {
        write_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CsvTable {
        CsvTable {
            header: vec!["mrn".into(), "name".into(), "age".into(), "note".into()],
            rows: vec![
                vec![
                    "1001".into(),
                    "Doe, Jane".into(),
                    "42".into(),
                    "stable".into(),
                ],
                vec![
                    "1002".into(),
                    "O\"Brien".into(),
                    "".into(),
                    "line1\nline2".into(),
                ],
            ],
        }
    }

    #[test]
    fn round_trip_with_quoting() {
        let t = table();
        let text = write_csv(&t);
        assert_eq!(parse_csv(&text).unwrap(), t);
    }

    #[test]
    fn simple_parse() {
        let t = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(t.header, vec!["a", "b"]);
        assert_eq!(t.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn crlf_and_no_trailing_newline() {
        let t = parse_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1], vec!["3", "4"]);
    }

    #[test]
    fn quoted_fields() {
        let t = parse_csv("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows[0], vec!["x,y", "say \"hi\""]);
    }

    #[test]
    fn embedded_newline() {
        let t = parse_csv("a,b\n\"1\n2\",3\n").unwrap();
        assert_eq!(t.rows[0][0], "1\n2");
    }

    #[test]
    fn column_accessors() {
        let t = parse_csv("id,score\nA,1.5\nB,\nC,oops\n").unwrap();
        assert_eq!(t.column("id").unwrap(), vec!["A", "B", "C"]);
        let scores = t.numeric_column("score").unwrap();
        assert_eq!(scores[0], 1.5);
        assert!(scores[1].is_nan()); // empty → NaN
        assert!(scores[2].is_nan()); // unparseable → NaN
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_csv("a,b\n1\n").is_err());
        assert!(parse_csv("a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn malformed_quotes_rejected() {
        assert!(parse_csv("a\n\"unterminated\n").is_err());
        assert!(parse_csv("a\nfoo\"bar\n").is_err());
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn empty_fields_preserved() {
        let t = parse_csv("a,b,c\n,,\nx,,z\n").unwrap();
        assert_eq!(t.rows[0], vec!["", "", ""]);
        assert_eq!(t.rows[1], vec!["x", "", "z"]);
    }
}
