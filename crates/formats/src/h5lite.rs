//! `h5lite` — a hierarchical, chunked, typed container in the spirit of
//! HDF5, defined from scratch.
//!
//! The bio/health archetype needs what HDF5 gives real pipelines: groups
//! forming a path hierarchy (`/patients/imaging/...`), typed n-dimensional
//! datasets with *chunked* storage (so one sample can be read without
//! touching the file's whole payload), and attributes on any node. A full
//! HDF5 implementation (B-trees, global heaps, v0–v3 superblocks) is out of
//! scope and unnecessary for the experiments; `h5lite` keeps the structural
//! essentials with an explicit, testable layout:
//!
//! ```text
//! "H5LT\x01\0\0\0"     magic + version
//! u64le index_offset    where the index (TOC) begins
//! payload              chunk data, concatenated
//! index:
//!   u32le node_count
//!   per node: path, kind (group/dataset), attrs,
//!             dtype, shape, chunk rows, per-chunk (offset, len, crc32c)
//! u64le index_crc  (crc32c of the serialized index)
//! ```
//!
//! Chunking is along the leading axis ("rows"), matching how samples are
//! appended and read back during training.

use crate::bytes::{arr4, arr8};
use crate::{malformed, FormatError};
use drai_io::checksum::crc32c;
use drai_tensor::{DType, Element, Tensor};
use std::collections::BTreeMap;

const MAGIC: &[u8; 8] = b"H5LT\x01\0\0\0";

/// Attribute value on a group or dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// UTF-8 text.
    Text(String),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

/// A dataset: dtype, shape, and chunked raw (little-endian) data.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Element type.
    pub dtype: DType,
    /// Full shape, leading axis = rows.
    pub shape: Vec<usize>,
    /// Rows per chunk (leading-axis chunking).
    pub chunk_rows: usize,
    /// Raw element bytes, row-major, little-endian, concatenated chunks.
    data: Vec<u8>,
}

impl Dataset {
    /// Create from a tensor with leading-axis chunking.
    pub fn from_tensor<T: Element>(t: &Tensor<T>, chunk_rows: usize) -> Dataset {
        Dataset {
            dtype: T::DTYPE,
            shape: t.shape().to_vec(),
            chunk_rows: chunk_rows.max(1),
            data: t.to_le_bytes(),
        }
    }

    /// Reassemble as a typed tensor.
    pub fn to_tensor<T: Element>(&self) -> Result<Tensor<T>, FormatError> {
        if T::DTYPE != self.dtype {
            return Err(malformed(
                "h5lite",
                format!(
                    "dtype mismatch: stored {}, requested {}",
                    self.dtype,
                    T::DTYPE
                ),
            ));
        }
        Tensor::from_le_bytes(&self.data, &self.shape)
            .map_err(|e| malformed("h5lite", format!("{e}")))
    }

    /// Number of leading-axis rows.
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(1)
    }

    /// Bytes per row (product of trailing dims × element size).
    fn row_bytes(&self) -> usize {
        let inner: usize = self.shape.iter().skip(1).product();
        inner.max(1) * self.dtype.size_bytes()
    }

    /// Raw little-endian bytes of rows `[start, end)` — the chunked-read
    /// path used to pull single samples without materializing the dataset.
    pub fn row_range_bytes(&self, start: usize, end: usize) -> Result<&[u8], FormatError> {
        if start > end || end > self.rows() {
            return Err(malformed("h5lite", format!("row range {start}..{end}")));
        }
        let rb = self.row_bytes();
        Ok(&self.data[start * rb..end * rb])
    }

    /// Number of chunks under leading-axis chunking.
    pub fn chunk_count(&self) -> usize {
        if self.shape.is_empty() {
            1
        } else {
            self.rows().div_ceil(self.chunk_rows).max(1)
        }
    }
}

/// A node in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An interior group.
    Group,
    /// A leaf dataset.
    Dataset(Dataset),
}

/// An in-memory h5lite file: path → node, plus attributes per path.
///
/// Paths are `/`-separated absolute paths (`/ehr/vitals`). Writing a
/// dataset auto-creates parent groups.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct H5File {
    nodes: BTreeMap<String, Node>,
    attrs: BTreeMap<String, Vec<(String, AttrValue)>>,
}

fn normalize_path(path: &str) -> Result<String, FormatError> {
    if !path.starts_with('/') || path.len() < 2 || path.ends_with('/') {
        return Err(malformed(
            "h5lite",
            format!("path {path:?} must be absolute, non-root, no trailing slash"),
        ));
    }
    if path
        .split('/')
        .skip(1)
        .any(|seg| seg.is_empty() || seg == "." || seg == "..")
    {
        return Err(malformed(
            "h5lite",
            format!("path {path:?} has bad segment"),
        ));
    }
    Ok(path.to_string())
}

impl H5File {
    /// Empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a group (and parents) explicitly.
    pub fn create_group(&mut self, path: &str) -> Result<(), FormatError> {
        let path = normalize_path(path)?;
        self.ensure_parents(&path)?;
        match self.nodes.get(&path) {
            Some(Node::Dataset(_)) => Err(malformed(
                "h5lite",
                format!("{path} already exists as a dataset"),
            )),
            _ => {
                self.nodes.insert(path, Node::Group);
                Ok(())
            }
        }
    }

    fn ensure_parents(&mut self, path: &str) -> Result<(), FormatError> {
        let mut acc = String::new();
        let segs: Vec<&str> = path.split('/').skip(1).collect();
        for seg in &segs[..segs.len() - 1] {
            acc.push('/');
            acc.push_str(seg);
            match self.nodes.get(acc.as_str()) {
                Some(Node::Dataset(_)) => {
                    return Err(malformed(
                        "h5lite",
                        format!("{acc} is a dataset, cannot contain children"),
                    ))
                }
                Some(Node::Group) => {}
                None => {
                    self.nodes.insert(acc.clone(), Node::Group);
                }
            }
        }
        Ok(())
    }

    /// Write a dataset at `path` (parents auto-created).
    pub fn put_dataset(&mut self, path: &str, ds: Dataset) -> Result<(), FormatError> {
        let path = normalize_path(path)?;
        self.ensure_parents(&path)?;
        if matches!(self.nodes.get(&path), Some(Node::Group)) {
            return Err(malformed("h5lite", format!("{path} is a group")));
        }
        self.nodes.insert(path, Node::Dataset(ds));
        Ok(())
    }

    /// Convenience: store a tensor.
    pub fn put_tensor<T: Element>(
        &mut self,
        path: &str,
        t: &Tensor<T>,
        chunk_rows: usize,
    ) -> Result<(), FormatError> {
        self.put_dataset(path, Dataset::from_tensor(t, chunk_rows))
    }

    /// Fetch a dataset.
    pub fn dataset(&self, path: &str) -> Option<&Dataset> {
        match self.nodes.get(path) {
            Some(Node::Dataset(ds)) => Some(ds),
            _ => None,
        }
    }

    /// Fetch a dataset as a typed tensor.
    pub fn tensor<T: Element>(&self, path: &str) -> Result<Tensor<T>, FormatError> {
        self.dataset(path)
            .ok_or_else(|| malformed("h5lite", format!("no dataset at {path}")))?
            .to_tensor()
    }

    /// Attach an attribute to an existing node.
    pub fn set_attr(
        &mut self,
        path: &str,
        name: &str,
        value: AttrValue,
    ) -> Result<(), FormatError> {
        if !self.nodes.contains_key(path) {
            return Err(malformed("h5lite", format!("no node at {path}")));
        }
        let list = self.attrs.entry(path.to_string()).or_default();
        if let Some(slot) = list.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            list.push((name.to_string(), value));
        }
        Ok(())
    }

    /// Read an attribute.
    pub fn attr(&self, path: &str, name: &str) -> Option<&AttrValue> {
        self.attrs
            .get(path)?
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// All node paths, sorted.
    pub fn paths(&self) -> Vec<&str> {
        self.nodes.keys().map(String::as_str).collect()
    }

    /// Immediate children of a group path ("/" lists roots).
    pub fn children(&self, group: &str) -> Vec<&str> {
        let prefix = if group == "/" {
            "/".to_string()
        } else {
            format!("{group}/")
        };
        self.nodes
            .keys()
            .filter(|p| p.starts_with(&prefix) && !p[prefix.len()..].contains('/'))
            .map(String::as_str)
            .collect()
    }

    /// Serialize to bytes (chunk payload + footer index, crc-protected).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&0u64.to_le_bytes()); // index offset placeholder

        // Payload: per dataset, per chunk.
        // chunk_locs[path] = Vec<(offset, len, crc)>
        let mut chunk_locs: BTreeMap<&str, Vec<(u64, u64, u32)>> = BTreeMap::new();
        for (path, node) in &self.nodes {
            if let Node::Dataset(ds) = node {
                let rb = ds.row_bytes();
                let rows = ds.rows();
                let mut locs = Vec::with_capacity(ds.chunk_count());
                if ds.shape.is_empty() {
                    let off = out.len() as u64;
                    out.extend_from_slice(&ds.data);
                    locs.push((off, ds.data.len() as u64, crc32c(&ds.data)));
                } else {
                    let mut r = 0;
                    while r < rows || (rows == 0 && r == 0) {
                        let end = (r + ds.chunk_rows).min(rows);
                        let bytes = &ds.data[r * rb..end * rb];
                        let off = out.len() as u64;
                        out.extend_from_slice(bytes);
                        locs.push((off, bytes.len() as u64, crc32c(bytes)));
                        if rows == 0 {
                            break;
                        }
                        r = end;
                    }
                }
                chunk_locs.insert(path, locs);
            }
        }

        // Index.
        let index_offset = out.len() as u64;
        let mut idx = Vec::new();
        idx.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for (path, node) in &self.nodes {
            write_str(&mut idx, path);
            let attrs = self.attrs.get(path).map(Vec::as_slice).unwrap_or(&[]);
            idx.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
            for (name, value) in attrs {
                write_str(&mut idx, name);
                write_attr(&mut idx, value);
            }
            match node {
                Node::Group => idx.push(0),
                Node::Dataset(ds) => {
                    idx.push(1);
                    idx.push(ds.dtype.code());
                    idx.extend_from_slice(&(ds.shape.len() as u32).to_le_bytes());
                    for &d in &ds.shape {
                        idx.extend_from_slice(&(d as u64).to_le_bytes());
                    }
                    idx.extend_from_slice(&(ds.chunk_rows as u64).to_le_bytes());
                    let locs = &chunk_locs[path.as_str()];
                    idx.extend_from_slice(&(locs.len() as u32).to_le_bytes());
                    for (off, len, crc) in locs {
                        idx.extend_from_slice(&off.to_le_bytes());
                        idx.extend_from_slice(&len.to_le_bytes());
                        idx.extend_from_slice(&crc.to_le_bytes());
                    }
                }
            }
        }
        let index_crc = crc32c(&idx);
        out.extend_from_slice(&idx);
        out.extend_from_slice(&index_crc.to_le_bytes());
        out[8..16].copy_from_slice(&index_offset.to_le_bytes());
        out
    }

    /// Parse from bytes, verifying index and chunk CRCs.
    pub fn from_bytes(bytes: &[u8]) -> Result<H5File, FormatError> {
        if bytes.len() < 20 || &bytes[..8] != MAGIC {
            return Err(malformed("h5lite", "bad magic"));
        }
        let index_offset = u64::from_le_bytes(arr8(&bytes[8..16])) as usize;
        if index_offset + 4 > bytes.len() {
            return Err(malformed("h5lite", "index offset out of range"));
        }
        let idx = &bytes[index_offset..bytes.len() - 4];
        let stored_crc = u32::from_le_bytes(arr4(&bytes[bytes.len() - 4..]));
        if crc32c(idx) != stored_crc {
            return Err(FormatError::Io(drai_io::IoError::ChecksumMismatch {
                context: "h5lite index".into(),
            }));
        }

        let mut c = Cur { b: idx, p: 0 };
        let count = c.u32()? as usize;
        let mut file = H5File::new();
        for _ in 0..count {
            let path = c.str()?;
            let nattrs = c.u32()? as usize;
            let mut attrs = Vec::with_capacity(nattrs);
            for _ in 0..nattrs {
                let name = c.str()?;
                attrs.push((name, c.attr()?));
            }
            let kind = c.u8()?;
            let node = match kind {
                0 => Node::Group,
                1 => {
                    let dtype = DType::from_code(c.u8()?)
                        .ok_or_else(|| malformed("h5lite", "bad dtype code"))?;
                    let ndims = c.u32()? as usize;
                    let mut shape = Vec::with_capacity(ndims);
                    for _ in 0..ndims {
                        shape.push(c.u64()? as usize);
                    }
                    let chunk_rows = c.u64()? as usize;
                    let nchunks = c.u32()? as usize;
                    let mut data = Vec::new();
                    for ci in 0..nchunks {
                        let off = c.u64()? as usize;
                        let len = c.u64()? as usize;
                        let crc = c.u32()?;
                        let chunk = bytes
                            .get(off..off + len)
                            .ok_or_else(|| malformed("h5lite", "chunk out of range"))?;
                        if crc32c(chunk) != crc {
                            return Err(FormatError::Io(drai_io::IoError::ChecksumMismatch {
                                context: format!("h5lite {path} chunk {ci}"),
                            }));
                        }
                        data.extend_from_slice(chunk);
                    }
                    let elems: usize = shape.iter().product();
                    if data.len() != elems * dtype.size_bytes() {
                        return Err(malformed("h5lite", format!("{path}: data/shape mismatch")));
                    }
                    Node::Dataset(Dataset {
                        dtype,
                        shape,
                        chunk_rows: chunk_rows.max(1),
                        data,
                    })
                }
                k => return Err(malformed("h5lite", format!("node kind {k}"))),
            };
            file.nodes.insert(path.clone(), node);
            if !attrs.is_empty() {
                file.attrs.insert(path, attrs);
            }
        }
        Ok(file)
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_attr(out: &mut Vec<u8>, v: &AttrValue) {
    match v {
        AttrValue::Text(s) => {
            out.push(0);
            write_str(out, s);
        }
        AttrValue::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        AttrValue::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
        AttrValue::Bytes(b) => {
            out.push(3);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let s = self
            .b
            .get(self.p..self.p + n)
            .ok_or_else(|| malformed("h5lite", "truncated index"))?;
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)))
    }
    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)))
    }
    fn str(&mut self) -> Result<String, FormatError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| malformed("h5lite", "non-UTF-8 string"))
    }
    fn attr(&mut self) -> Result<AttrValue, FormatError> {
        Ok(match self.u8()? {
            0 => AttrValue::Text(self.str()?),
            1 => AttrValue::Int(i64::from_le_bytes(arr8(self.take(8)?))),
            2 => AttrValue::Float(f64::from_le_bytes(arr8(self.take(8)?))),
            3 => {
                let n = self.u32()? as usize;
                AttrValue::Bytes(self.take(n)?.to_vec())
            }
            t => return Err(malformed("h5lite", format!("attr type {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> H5File {
        let mut f = H5File::new();
        let vitals = Tensor::from_fn(&[10, 4], |i| i as f32 * 0.5);
        f.put_tensor("/ehr/vitals", &vitals, 4).unwrap();
        let labels = Tensor::from_vec((0..10).collect::<Vec<i64>>(), &[10]).unwrap();
        f.put_tensor("/ehr/labels", &labels, 100).unwrap();
        let onehot = Tensor::from_fn(&[3, 2, 4], |i| (i % 2) as u8);
        f.put_tensor("/genomics/onehot", &onehot, 1).unwrap();
        f.set_attr("/ehr", "anonymized", AttrValue::Int(1)).unwrap();
        f.set_attr("/ehr/vitals", "units", AttrValue::Text("mixed".into()))
            .unwrap();
        f.set_attr("/ehr/vitals", "mean", AttrValue::Float(2.375))
            .unwrap();
        f.set_attr(
            "/genomics/onehot",
            "alphabet",
            AttrValue::Bytes(b"ACGT".to_vec()),
        )
        .unwrap();
        f
    }

    #[test]
    fn round_trip() {
        let f = sample_file();
        let bytes = f.to_bytes();
        let back = H5File::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        let vitals: Tensor<f32> = back.tensor("/ehr/vitals").unwrap();
        assert_eq!(vitals.shape(), &[10, 4]);
        assert_eq!(vitals.get(&[9, 3]).unwrap(), 39.0 * 0.5);
    }

    #[test]
    fn hierarchy_auto_created() {
        let f = sample_file();
        assert!(matches!(f.nodes.get("/ehr"), Some(Node::Group)));
        assert!(matches!(f.nodes.get("/genomics"), Some(Node::Group)));
        let mut roots = f.children("/");
        roots.sort();
        assert_eq!(roots, vec!["/ehr", "/genomics"]);
        let mut kids = f.children("/ehr");
        kids.sort();
        assert_eq!(kids, vec!["/ehr/labels", "/ehr/vitals"]);
    }

    #[test]
    fn attrs_round_trip_and_overwrite() {
        let mut f = sample_file();
        assert_eq!(f.attr("/ehr", "anonymized"), Some(&AttrValue::Int(1)));
        f.set_attr("/ehr", "anonymized", AttrValue::Int(0)).unwrap();
        assert_eq!(f.attr("/ehr", "anonymized"), Some(&AttrValue::Int(0)));
        assert_eq!(f.attr("/ehr", "missing"), None);
        assert!(f.set_attr("/nope", "x", AttrValue::Int(1)).is_err());
        let back = H5File::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(
            back.attr("/genomics/onehot", "alphabet"),
            Some(&AttrValue::Bytes(b"ACGT".to_vec()))
        );
    }

    #[test]
    fn chunked_row_reads() {
        let f = sample_file();
        let ds = f.dataset("/ehr/vitals").unwrap();
        assert_eq!(ds.chunk_count(), 3); // 10 rows / 4 per chunk
        let rows = ds.row_range_bytes(2, 4).unwrap();
        assert_eq!(rows.len(), 2 * 4 * 4);
        let first = f32::from_le_bytes(rows[..4].try_into().unwrap());
        assert_eq!(first, 8.0 * 0.5);
        assert!(ds.row_range_bytes(9, 11).is_err());
    }

    #[test]
    fn corruption_detected() {
        let f = sample_file();
        let mut bytes = f.to_bytes();
        bytes[20] ^= 0xFF; // inside first chunk payload
        assert!(matches!(
            H5File::from_bytes(&bytes),
            Err(FormatError::Io(drai_io::IoError::ChecksumMismatch { .. }))
        ));
        let mut bytes2 = f.to_bytes();
        let n = bytes2.len();
        bytes2[n - 10] ^= 0xFF; // inside index
        assert!(H5File::from_bytes(&bytes2).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_file().to_bytes();
        assert!(H5File::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(H5File::from_bytes(&bytes[..10]).is_err());
        assert!(H5File::from_bytes(b"JUNKJUNKJUNKJUNKJUNK").is_err());
    }

    #[test]
    fn path_validation() {
        let mut f = H5File::new();
        let t = Tensor::<f32>::zeros(&[1]);
        assert!(f.put_tensor("relative", &t, 1).is_err());
        assert!(f.put_tensor("/a//b", &t, 1).is_err());
        assert!(f.put_tensor("/a/", &t, 1).is_err());
        assert!(f.put_tensor("/a/../b", &t, 1).is_err());
        f.put_tensor("/a/b", &t, 1).unwrap();
        // Dataset cannot be a parent.
        assert!(f.put_tensor("/a/b/c", &t, 1).is_err());
        // Group/dataset collision.
        assert!(f.create_group("/a/b").is_err());
        f.create_group("/g").unwrap();
        assert!(f.put_tensor("/g", &t, 1).is_err());
    }

    #[test]
    fn dtype_mismatch_on_read() {
        let f = sample_file();
        assert!(f.tensor::<f64>("/ehr/vitals").is_err());
        assert!(f.tensor::<f32>("/missing").is_err());
    }

    #[test]
    fn empty_file_round_trip() {
        let f = H5File::new();
        let back = H5File::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn zero_row_dataset() {
        let mut f = H5File::new();
        let t = Tensor::<f64>::zeros(&[0, 5]);
        f.put_tensor("/empty", &t, 8).unwrap();
        let back = H5File::from_bytes(&f.to_bytes()).unwrap();
        let r: Tensor<f64> = back.tensor("/empty").unwrap();
        assert_eq!(r.shape(), &[0, 5]);
    }
}
