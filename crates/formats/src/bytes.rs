//! Panic-free fixed-width byte-array extraction for format parsers.
//!
//! Parsers bounds-check before slicing, so these helpers never see a
//! short slice in practice; if one ever does, the missing bytes read as
//! zero instead of aborting the worker thread — a corrupt field then
//! surfaces through the parser's own validation (CRCs, counts, magic
//! checks) as a `FormatError` the pipeline can quarantine.

/// First 2 bytes of `b`, zero-extended.
pub(crate) fn arr2(b: &[u8]) -> [u8; 2] {
    let mut a = [0u8; 2];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    a
}

/// First 4 bytes of `b`, zero-extended.
pub(crate) fn arr4(b: &[u8]) -> [u8; 4] {
    let mut a = [0u8; 4];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    a
}

/// First 8 bytes of `b`, zero-extended.
pub(crate) fn arr8(b: &[u8]) -> [u8; 8] {
    let mut a = [0u8; 8];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_slices_round_trip() {
        assert_eq!(arr2(&[1, 2]), [1, 2]);
        assert_eq!(arr4(&[1, 2, 3, 4]), [1, 2, 3, 4]);
        assert_eq!(arr8(&[1, 2, 3, 4, 5, 6, 7, 8]), [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn long_slices_truncate_short_slices_zero_extend() {
        assert_eq!(arr4(&[9, 9, 9, 9, 9, 9]), [9, 9, 9, 9]);
        assert_eq!(arr4(&[7]), [7, 0, 0, 0]);
        assert_eq!(arr8(&[]), [0; 8]);
    }
}
