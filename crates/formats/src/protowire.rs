//! Protobuf wire-format primitives (encode + decode), from scratch.
//!
//! Only what `tf.train.Example` needs: varint fields, length-delimited
//! fields, and packed repeated scalars. Wire types per the protobuf spec:
//! 0 = varint, 1 = 64-bit, 2 = length-delimited, 5 = 32-bit.

use crate::bytes::{arr4, arr8};
use crate::{malformed, FormatError};
use drai_io::varint::{read_uvarint, write_uvarint};

/// Wire type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Varint-encoded scalar.
    Varint,
    /// Fixed 64-bit little-endian.
    Fixed64,
    /// Length-delimited bytes.
    LengthDelimited,
    /// Fixed 32-bit little-endian.
    Fixed32,
}

impl WireType {
    fn from_tag(tag: u64) -> Result<WireType, FormatError> {
        Ok(match tag & 0x7 {
            0 => WireType::Varint,
            1 => WireType::Fixed64,
            2 => WireType::LengthDelimited,
            5 => WireType::Fixed32,
            other => return Err(malformed("protobuf", format!("wire type {other}"))),
        })
    }

    const fn code(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
            WireType::Fixed32 => 5,
        }
    }
}

/// Append a field key (field number + wire type).
pub fn write_key(out: &mut Vec<u8>, field: u32, wire: WireType) {
    write_uvarint(out, ((field as u64) << 3) | wire.code());
}

/// Append a varint field.
pub fn write_varint_field(out: &mut Vec<u8>, field: u32, value: u64) {
    write_key(out, field, WireType::Varint);
    write_uvarint(out, value);
}

/// Append a length-delimited field (bytes, strings, sub-messages).
pub fn write_bytes_field(out: &mut Vec<u8>, field: u32, data: &[u8]) {
    write_key(out, field, WireType::LengthDelimited);
    write_uvarint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Append a packed repeated float field (wire type 2 holding f32s).
pub fn write_packed_floats(out: &mut Vec<u8>, field: u32, values: &[f32]) {
    write_key(out, field, WireType::LengthDelimited);
    write_uvarint(out, (values.len() * 4) as u64);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append a packed repeated int64 field (varint-coded).
pub fn write_packed_int64(out: &mut Vec<u8>, field: u32, values: &[i64]) {
    let mut payload = Vec::with_capacity(values.len() * 2);
    for &v in values {
        // Protobuf int64 uses two's-complement varints (not zigzag).
        write_uvarint(&mut payload, v as u64);
    }
    write_bytes_field(out, field, &payload);
}

/// One decoded field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue<'a> {
    /// Wire type 0.
    Varint(u64),
    /// Wire type 1.
    Fixed64(u64),
    /// Wire type 2.
    Bytes(&'a [u8]),
    /// Wire type 5.
    Fixed32(u32),
}

/// Iterate `(field_number, value)` pairs of a message body.
pub fn decode_fields(mut data: &[u8]) -> Result<Vec<(u32, FieldValue<'_>)>, FormatError> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let (key, n) = read_uvarint(data).ok_or_else(|| malformed("protobuf", "bad key"))?;
        data = &data[n..];
        let field = (key >> 3) as u32;
        if field == 0 {
            return Err(malformed("protobuf", "field number 0"));
        }
        let wire = WireType::from_tag(key)?;
        let value = match wire {
            WireType::Varint => {
                let (v, n) =
                    read_uvarint(data).ok_or_else(|| malformed("protobuf", "bad varint"))?;
                data = &data[n..];
                FieldValue::Varint(v)
            }
            WireType::Fixed64 => {
                if data.len() < 8 {
                    return Err(malformed("protobuf", "short fixed64"));
                }
                let v = u64::from_le_bytes(arr8(&data[..8]));
                data = &data[8..];
                FieldValue::Fixed64(v)
            }
            WireType::LengthDelimited => {
                let (len, n) =
                    read_uvarint(data).ok_or_else(|| malformed("protobuf", "bad length"))?;
                data = &data[n..];
                let len = usize::try_from(len).map_err(|_| malformed("protobuf", "huge length"))?;
                if data.len() < len {
                    return Err(malformed("protobuf", "short length-delimited"));
                }
                let v = FieldValue::Bytes(&data[..len]);
                data = &data[len..];
                v
            }
            WireType::Fixed32 => {
                if data.len() < 4 {
                    return Err(malformed("protobuf", "short fixed32"));
                }
                let v = u32::from_le_bytes(arr4(&data[..4]));
                data = &data[4..];
                FieldValue::Fixed32(v)
            }
        };
        out.push((field, value));
    }
    Ok(out)
}

/// Decode a packed float payload (length must be a multiple of 4).
pub fn decode_packed_floats(data: &[u8]) -> Result<Vec<f32>, FormatError> {
    if data.len() % 4 != 0 {
        return Err(malformed("protobuf", "packed float length not /4"));
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(arr4(c)))
        .collect())
}

/// Decode a packed int64 payload (sequence of varints).
pub fn decode_packed_int64(mut data: &[u8]) -> Result<Vec<i64>, FormatError> {
    let mut out = Vec::new();
    while !data.is_empty() {
        let (v, n) = read_uvarint(data).ok_or_else(|| malformed("protobuf", "bad packed int"))?;
        data = &data[n..];
        out.push(v as i64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encoding_field1_varint150() {
        // The canonical protobuf docs example: field 1, varint 150
        // encodes as 08 96 01.
        let mut out = Vec::new();
        write_varint_field(&mut out, 1, 150);
        assert_eq!(out, vec![0x08, 0x96, 0x01]);
    }

    #[test]
    fn known_encoding_field2_string() {
        // Field 2, string "testing" → 12 07 74 65 73 74 69 6e 67.
        let mut out = Vec::new();
        write_bytes_field(&mut out, 2, b"testing");
        assert_eq!(
            out,
            vec![0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6E, 0x67]
        );
    }

    #[test]
    fn decode_round_trip() {
        let mut msg = Vec::new();
        write_varint_field(&mut msg, 1, 42);
        write_bytes_field(&mut msg, 2, b"abc");
        write_varint_field(&mut msg, 3, u64::MAX);
        let fields = decode_fields(&msg).unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], (1, FieldValue::Varint(42)));
        assert_eq!(fields[1], (2, FieldValue::Bytes(b"abc")));
        assert_eq!(fields[2], (3, FieldValue::Varint(u64::MAX)));
    }

    #[test]
    fn packed_floats_round_trip() {
        let vals = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let mut msg = Vec::new();
        write_packed_floats(&mut msg, 1, &vals);
        let fields = decode_fields(&msg).unwrap();
        match &fields[0].1 {
            FieldValue::Bytes(b) => assert_eq!(decode_packed_floats(b).unwrap(), vals),
            other => panic!("wrong wire type: {other:?}"),
        }
    }

    #[test]
    fn packed_int64_round_trip_negative() {
        let vals = vec![0i64, 1, -1, i64::MIN, i64::MAX];
        let mut msg = Vec::new();
        write_packed_int64(&mut msg, 1, &vals);
        let fields = decode_fields(&msg).unwrap();
        match &fields[0].1 {
            FieldValue::Bytes(b) => assert_eq!(decode_packed_int64(b).unwrap(), vals),
            other => panic!("wrong wire type: {other:?}"),
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_fields(&[0x08]).is_err()); // key without value
        assert!(decode_fields(&[0x00]).is_err()); // field number 0
        assert!(decode_fields(&[0x12, 0x05, 0x01]).is_err()); // short bytes
        assert!(decode_fields(&[0x0B]).is_err()); // wire type 3 (groups)
        assert!(decode_packed_floats(&[1, 2, 3]).is_err());
    }

    #[test]
    fn fixed_width_fields() {
        let mut msg = Vec::new();
        write_key(&mut msg, 4, WireType::Fixed32);
        msg.extend_from_slice(&7u32.to_le_bytes());
        write_key(&mut msg, 5, WireType::Fixed64);
        msg.extend_from_slice(&9u64.to_le_bytes());
        let fields = decode_fields(&msg).unwrap();
        assert_eq!(fields[0], (4, FieldValue::Fixed32(7)));
        assert_eq!(fields[1], (5, FieldValue::Fixed64(9)));
    }
}
