//! FASTA and FASTQ sequence file parsing/writing for the bio archetype.
//!
//! Enformer-style genomic pipelines ingest DNA as FASTA; sequencing reads
//! arrive as FASTQ with per-base Phred quality scores. Both are simple
//! line-oriented formats, but real files are messy — wrapped sequence
//! lines, CRLF endings, empty trailing lines — which this parser handles.

use crate::{malformed, FormatError};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line without the leading `>` (id + optional description).
    pub header: String,
    /// Sequence with line wrapping removed (uppercased).
    pub sequence: String,
}

impl FastaRecord {
    /// The id: the header up to the first whitespace.
    pub fn id(&self) -> &str {
        self.header.split_whitespace().next().unwrap_or("")
    }
}

/// Parse FASTA text into records.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, FormatError> {
    let mut records = Vec::new();
    let mut header: Option<String> = None;
    let mut seq = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            if let Some(prev) = header.take() {
                records.push(FastaRecord {
                    header: prev,
                    sequence: std::mem::take(&mut seq),
                });
            }
            header = Some(h.trim().to_string());
        } else {
            if header.is_none() {
                return Err(malformed(
                    "fasta",
                    format!("line {}: sequence before header", lineno + 1),
                ));
            }
            for c in line.chars() {
                if c.is_ascii_alphabetic() || c == '*' || c == '-' {
                    seq.push(c.to_ascii_uppercase());
                } else {
                    return Err(malformed(
                        "fasta",
                        format!("line {}: invalid character {c:?}", lineno + 1),
                    ));
                }
            }
        }
    }
    if let Some(prev) = header {
        records.push(FastaRecord {
            header: prev,
            sequence: seq,
        });
    }
    Ok(records)
}

/// Write records as FASTA with sequence lines wrapped at `width`.
pub fn write_fasta(records: &[FastaRecord], width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.header);
        out.push('\n');
        let bytes = r.sequence.as_bytes();
        for chunk in bytes.chunks(width) {
            out.push_str(&String::from_utf8_lossy(chunk));
            out.push('\n');
        }
        if r.sequence.is_empty() {
            // Keep a blank sequence line out; header alone suffices.
        }
    }
    out
}

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read id (without the leading `@`).
    pub id: String,
    /// Base calls.
    pub sequence: String,
    /// Phred+33 quality string, same length as `sequence`.
    pub quality: String,
}

impl FastqRecord {
    /// Decoded Phred quality scores.
    pub fn phred_scores(&self) -> Vec<u8> {
        self.quality.bytes().map(|b| b.saturating_sub(33)).collect()
    }

    /// Mean Phred score (0 when empty).
    pub fn mean_quality(&self) -> f64 {
        let scores = self.phred_scores();
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().map(|&s| s as f64).sum::<f64>() / scores.len() as f64
    }
}

/// Parse FASTQ text (strict 4-line records).
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, FormatError> {
    let lines: Vec<&str> = text.lines().map(|l| l.trim_end_matches('\r')).collect();
    // Allow trailing empty lines.
    let mut end = lines.len();
    while end > 0 && lines[end - 1].is_empty() {
        end -= 1;
    }
    let lines = &lines[..end];
    if lines.len() % 4 != 0 {
        return Err(malformed(
            "fastq",
            format!("{} lines is not a multiple of 4", lines.len()),
        ));
    }
    let mut out = Vec::with_capacity(lines.len() / 4);
    for (i, rec) in lines.chunks_exact(4).enumerate() {
        let id = rec[0]
            .strip_prefix('@')
            .ok_or_else(|| malformed("fastq", format!("record {i}: missing @")))?;
        if !rec[2].starts_with('+') {
            return Err(malformed("fastq", format!("record {i}: missing +")));
        }
        if rec[1].len() != rec[3].len() {
            return Err(malformed(
                "fastq",
                format!("record {i}: sequence/quality length mismatch"),
            ));
        }
        out.push(FastqRecord {
            id: id.trim().to_string(),
            sequence: rec[1].to_ascii_uppercase(),
            quality: rec[3].to_string(),
        });
    }
    Ok(out)
}

/// Write FASTQ text.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push('@');
        out.push_str(&r.id);
        out.push('\n');
        out.push_str(&r.sequence);
        out.push_str("\n+\n");
        out.push_str(&r.quality);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_round_trip_with_wrapping() {
        let records = vec![
            FastaRecord {
                header: "chr1 test sequence".into(),
                sequence: "ACGTACGTACGTACGTACGT".into(),
            },
            FastaRecord {
                header: "chr2".into(),
                sequence: "GGGCCC".into(),
            },
        ];
        let text = write_fasta(&records, 8);
        assert!(text.contains(">chr1 test sequence\nACGTACGT\nACGTACGT\nACGT\n"));
        assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    #[test]
    fn fasta_id_extraction() {
        let r = FastaRecord {
            header: "seq42 description here".into(),
            sequence: "A".into(),
        };
        assert_eq!(r.id(), "seq42");
    }

    #[test]
    fn fasta_handles_crlf_and_case() {
        let text = ">x\r\nacgt\r\nACGT\r\n";
        let recs = parse_fasta(text).unwrap();
        assert_eq!(recs[0].sequence, "ACGTACGT");
    }

    #[test]
    fn fasta_rejects_garbage() {
        assert!(parse_fasta("ACGT\n>x\n").is_err()); // seq before header
        assert!(parse_fasta(">x\nAC GT\n").is_err()); // space in sequence
        assert!(parse_fasta(">x\nAC1T\n").is_err()); // digit
        assert!(parse_fasta("").unwrap().is_empty());
    }

    #[test]
    fn fasta_gap_and_stop_allowed() {
        let recs = parse_fasta(">p\nMKV-*\n").unwrap();
        assert_eq!(recs[0].sequence, "MKV-*");
    }

    #[test]
    fn fastq_round_trip() {
        let records = vec![
            FastqRecord {
                id: "read1".into(),
                sequence: "ACGT".into(),
                quality: "IIII".into(),
            },
            FastqRecord {
                id: "read2".into(),
                sequence: "GG".into(),
                quality: "!~".into(),
            },
        ];
        let text = write_fastq(&records);
        assert_eq!(parse_fastq(&text).unwrap(), records);
    }

    #[test]
    fn fastq_quality_decoding() {
        let r = FastqRecord {
            id: "x".into(),
            sequence: "ACG".into(),
            quality: "!I~".into(), // Phred 0, 40, 93
        };
        assert_eq!(r.phred_scores(), vec![0, 40, 93]);
        assert!((r.mean_quality() - (0.0 + 40.0 + 93.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fastq_rejects_malformed() {
        assert!(parse_fastq("@x\nACGT\n+\nIII\n").is_err()); // len mismatch
        assert!(parse_fastq("x\nACGT\n+\nIIII\n").is_err()); // no @
        assert!(parse_fastq("@x\nACGT\nIIII\n").is_err()); // not 4 lines
        assert!(parse_fastq("@x\nACGT\n-\nIIII\n").is_err()); // no +
        assert!(parse_fastq("").unwrap().is_empty());
    }
}
