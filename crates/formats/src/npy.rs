//! NumPy NPY v1.0 serialization, byte-compatible with the published spec.
//!
//! ClimaX-style climate pipelines shard preprocessed fields as `.npz` files
//! (ZIP archives of `.npy` members). The v1.0 layout is:
//!
//! ```text
//! \x93NUMPY            magic (6 bytes)
//! \x01 \x00            version major.minor
//! HLEN                 u16 little-endian header length
//! header               Python dict literal, space-padded so that
//!                      10 + HLEN ≡ 0 (mod 64), ending in '\n'
//! data                 raw little-endian elements, C order
//! ```

use crate::{malformed, unsupported, FormatError};
use drai_tensor::{DType, Element, Tensor};

const MAGIC: &[u8; 6] = b"\x93NUMPY";

/// Serialize a tensor as NPY v1.0 bytes.
pub fn write_npy<T: Element>(tensor: &Tensor<T>) -> Vec<u8> {
    let shape_str = match tensor.shape() {
        [] => "()".to_string(),
        [n] => format!("({n},)"),
        dims => format!(
            "({})",
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    let header_body = format!(
        "{{'descr': '{}', 'fortran_order': False, 'shape': {}, }}",
        T::DTYPE.numpy_descr(),
        shape_str
    );
    // Pad with spaces so magic(6)+version(2)+hlen(2)+header is 64-aligned,
    // with a final newline (per the spec).
    let unpadded = 10 + header_body.len() + 1;
    let padding = (64 - unpadded % 64) % 64;
    let header = format!("{header_body}{}\n", " ".repeat(padding));
    assert!(header.len() <= u16::MAX as usize, "npy header too long");

    let mut out = Vec::with_capacity(10 + header.len() + tensor.len() * T::DTYPE.size_bytes());
    out.extend_from_slice(MAGIC);
    out.push(1);
    out.push(0);
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(&tensor.to_le_bytes());
    out
}

/// Header fields parsed from an NPY file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpyHeader {
    /// Element dtype.
    pub dtype: DType,
    /// Array shape (C order).
    pub shape: Vec<usize>,
    /// Byte offset where data begins.
    pub data_offset: usize,
}

/// Parse the NPY header (v1.0 and v2.0 accepted; Fortran order rejected).
pub fn parse_header(bytes: &[u8]) -> Result<NpyHeader, FormatError> {
    if bytes.len() < 10 || &bytes[..6] != MAGIC {
        return Err(malformed("npy", "bad magic"));
    }
    let (major, minor) = (bytes[6], bytes[7]);
    let (hlen, header_start) = match (major, minor) {
        (1, 0) => (u16::from_le_bytes([bytes[8], bytes[9]]) as usize, 10usize),
        (2, 0) => {
            if bytes.len() < 12 {
                return Err(malformed("npy", "truncated v2 header length"));
            }
            (
                u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize,
                12usize,
            )
        }
        _ => return Err(unsupported("npy", format!("version {major}.{minor}"))),
    };
    let end = header_start + hlen;
    if bytes.len() < end {
        return Err(malformed("npy", "truncated header"));
    }
    let header = std::str::from_utf8(&bytes[header_start..end])
        .map_err(|_| malformed("npy", "header not ASCII"))?;

    let descr = extract_quoted(header, "descr").ok_or_else(|| malformed("npy", "no descr"))?;
    let dtype = DType::from_numpy_descr(&descr)
        .ok_or_else(|| unsupported("npy", format!("dtype {descr}")))?;

    let fortran = header
        .split("'fortran_order':")
        .nth(1)
        .map(|s| s.trim_start().starts_with("True"))
        .unwrap_or(false);
    if fortran {
        return Err(unsupported("npy", "fortran_order=True"));
    }

    let shape_src = header
        .split("'shape':")
        .nth(1)
        .ok_or_else(|| malformed("npy", "no shape"))?;
    let open = shape_src
        .find('(')
        .ok_or_else(|| malformed("npy", "shape paren"))?;
    let close = shape_src
        .find(')')
        .ok_or_else(|| malformed("npy", "shape paren"))?;
    let mut shape = Vec::new();
    for part in shape_src[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        shape.push(
            part.parse::<usize>()
                .map_err(|_| malformed("npy", format!("bad dim {part:?}")))?,
        );
    }
    Ok(NpyHeader {
        dtype,
        shape,
        data_offset: end,
    })
}

fn extract_quoted(header: &str, key: &str) -> Option<String> {
    let marker = format!("'{key}':");
    let rest = header.split(&marker).nth(1)?;
    let rest = rest.trim_start();
    let quote = rest.chars().next()?;
    if quote != '\'' && quote != '"' {
        return None;
    }
    let inner = &rest[1..];
    let end = inner.find(quote)?;
    Some(inner[..end].to_string())
}

/// Deserialize an NPY file into a typed tensor. The requested element type
/// must match the stored dtype exactly (scientific pipelines must not
/// silently change precision — see the paper's §2.2).
pub fn read_npy<T: Element>(bytes: &[u8]) -> Result<Tensor<T>, FormatError> {
    let header = parse_header(bytes)?;
    if header.dtype != T::DTYPE {
        return Err(malformed(
            "npy",
            format!(
                "dtype mismatch: stored {}, requested {}",
                header.dtype,
                T::DTYPE
            ),
        ));
    }
    let n: usize = header.shape.iter().product();
    let need = n * header.dtype.size_bytes();
    let data = bytes
        .get(header.data_offset..header.data_offset + need)
        .ok_or_else(|| malformed("npy", "truncated data"))?;
    Tensor::from_le_bytes(data, &header.shape)
        .map_err(|e| malformed("npy", format!("shape error: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_byte_exact_vs_numpy() {
        // Reference bytes produced by:
        //   np.save(f, np.arange(3, dtype='<f4'))  (NumPy 1.26)
        let t = Tensor::from_vec(vec![0.0_f32, 1.0, 2.0], &[3]).unwrap();
        let bytes = write_npy(&t);
        let expected_header =
            b"\x93NUMPY\x01\x00\x76\x00{'descr': '<f4', 'fortran_order': False, 'shape': (3,), }";
        assert_eq!(&bytes[..expected_header.len()], expected_header);
        // Total prefix is 64-aligned and ends with newline.
        assert_eq!(bytes.len() % 64, 12); // 128 header + 12 data bytes
        assert_eq!(bytes[127], b'\n');
        // Data payload.
        assert_eq!(&bytes[128..132], &0.0_f32.to_le_bytes());
        assert_eq!(&bytes[132..136], &1.0_f32.to_le_bytes());
    }

    #[test]
    fn round_trip_all_dtypes() {
        fn rt<T: Element>(data: Vec<T>, shape: &[usize]) {
            let t = Tensor::from_vec(data, shape).unwrap();
            let bytes = write_npy(&t);
            let back = read_npy::<T>(&bytes).unwrap();
            assert_eq!(back, t);
        }
        rt(vec![1.5_f32, -2.0, 3.25, 0.0, 5.5, -6.125], &[2, 3]);
        rt(vec![1.5_f64, -2.0], &[2]);
        rt(vec![-1_i32, 0, 7], &[3]);
        rt(vec![i64::MIN, i64::MAX], &[2, 1]);
        rt(vec![0_u8, 255, 128], &[3]);
        rt(vec![true, false, true, true], &[2, 2]);
    }

    #[test]
    fn round_trip_3d_and_empty() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f64);
        assert_eq!(read_npy::<f64>(&write_npy(&t)).unwrap(), t);
        let e = Tensor::<f32>::zeros(&[0]);
        assert_eq!(read_npy::<f32>(&write_npy(&e)).unwrap(), e);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let t = Tensor::from_vec(vec![1.0_f32], &[1]).unwrap();
        let bytes = write_npy(&t);
        assert!(read_npy::<f64>(&bytes).is_err());
    }

    #[test]
    fn fortran_order_rejected() {
        let t = Tensor::from_vec(vec![1.0_f32], &[1]).unwrap();
        let bytes = write_npy(&t);
        let hlen = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
        let end = 10 + hlen;
        let text = String::from_utf8_lossy(&bytes[10..end]).replace("False", "True ");
        let mut forged = bytes[..10].to_vec();
        forged.extend_from_slice(text.as_bytes());
        forged.extend_from_slice(&bytes[end..]);
        assert!(matches!(
            parse_header(&forged),
            Err(FormatError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let t = Tensor::from_vec(vec![1.0_f64; 10], &[10]).unwrap();
        let bytes = write_npy(&t);
        assert!(read_npy::<f64>(&bytes[..bytes.len() - 1]).is_err());
        assert!(parse_header(&bytes[..5]).is_err());
        assert!(read_npy::<f64>(b"not an npy file").is_err());
    }

    #[test]
    fn v2_header_accepted() {
        // Hand-build a v2.0 file with a u32 header length.
        let t = Tensor::from_vec(vec![7_i32, 8], &[2]).unwrap();
        let v1 = write_npy(&t);
        let hlen = u16::from_le_bytes([v1[8], v1[9]]) as u32;
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC);
        v2.push(2);
        v2.push(0);
        v2.extend_from_slice(&hlen.to_le_bytes());
        v2.extend_from_slice(&v1[10..]);
        let back = read_npy::<i32>(&v2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn scalar_shape() {
        let t = Tensor::from_vec(vec![42.0_f64], &[]).unwrap();
        let bytes = write_npy(&t);
        let h = parse_header(&bytes).unwrap();
        assert!(h.shape.is_empty());
        assert_eq!(read_npy::<f64>(&bytes).unwrap().get(&[]).unwrap(), 42.0);
    }
}
