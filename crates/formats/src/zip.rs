//! Minimal ZIP archive writer/reader (STORE method only) with CRC-32.
//!
//! This is the container behind `.npz` shards: each member is an `.npy`
//! file stored uncompressed (matching `numpy.savez`, which also stores).
//! Implements the classic ZIP structures — local file headers, central
//! directory, end-of-central-directory — for archives < 4 GiB (no ZIP64).

use crate::bytes::{arr2, arr4};
use crate::{malformed, unsupported, FormatError};
use drai_io::crc32;

const LOCAL_MAGIC: u32 = 0x04034B50;
const CENTRAL_MAGIC: u32 = 0x02014B50;
const EOCD_MAGIC: u32 = 0x06054B50;

/// An archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Member file name (forward-slash separated).
    pub name: String,
    /// Member contents.
    pub data: Vec<u8>,
}

/// Build a STORE-mode ZIP archive from `(name, data)` members.
///
/// Fails if total size would exceed the 32-bit ZIP limits (callers shard
/// well below 4 GiB; there is no ZIP64 support).
pub fn write_zip(entries: &[ZipEntry]) -> Result<Vec<u8>, FormatError> {
    let total: usize = entries
        .iter()
        .map(|e| e.data.len() + e.name.len() + 92)
        .sum();
    let mut out = Vec::with_capacity(total + 22);
    let mut central = Vec::new();
    for entry in entries {
        let name = entry.name.as_bytes();
        let crc = crc32(&entry.data);
        let size = u32::try_from(entry.data.len())
            .map_err(|_| unsupported("zip", format!("member `{}` exceeds 4 GiB", entry.name)))?;
        let offset = u32::try_from(out.len())
            .map_err(|_| unsupported("zip", "archive exceeds 4 GiB (no ZIP64)"))?;

        // Local file header.
        out.extend_from_slice(&LOCAL_MAGIC.to_le_bytes());
        out.extend_from_slice(&20u16.to_le_bytes()); // version needed
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&0u16.to_le_bytes()); // method: STORE
        out.extend_from_slice(&0u16.to_le_bytes()); // mod time
        out.extend_from_slice(&0u16.to_le_bytes()); // mod date
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&size.to_le_bytes()); // compressed
        out.extend_from_slice(&size.to_le_bytes()); // uncompressed
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // extra len
        out.extend_from_slice(name);
        out.extend_from_slice(&entry.data);

        // Central directory record.
        central.extend_from_slice(&CENTRAL_MAGIC.to_le_bytes());
        central.extend_from_slice(&20u16.to_le_bytes()); // version made by
        central.extend_from_slice(&20u16.to_le_bytes()); // version needed
        central.extend_from_slice(&0u16.to_le_bytes()); // flags
        central.extend_from_slice(&0u16.to_le_bytes()); // method
        central.extend_from_slice(&0u16.to_le_bytes()); // time
        central.extend_from_slice(&0u16.to_le_bytes()); // date
        central.extend_from_slice(&crc.to_le_bytes());
        central.extend_from_slice(&size.to_le_bytes());
        central.extend_from_slice(&size.to_le_bytes());
        central.extend_from_slice(&(name.len() as u16).to_le_bytes());
        central.extend_from_slice(&0u16.to_le_bytes()); // extra
        central.extend_from_slice(&0u16.to_le_bytes()); // comment
        central.extend_from_slice(&0u16.to_le_bytes()); // disk number
        central.extend_from_slice(&0u16.to_le_bytes()); // internal attrs
        central.extend_from_slice(&0u32.to_le_bytes()); // external attrs
        central.extend_from_slice(&offset.to_le_bytes());
        central.extend_from_slice(name);
    }
    let cd_offset = u32::try_from(out.len())
        .map_err(|_| unsupported("zip", "archive exceeds 4 GiB (no ZIP64)"))?;
    let cd_size = u32::try_from(central.len())
        .map_err(|_| unsupported("zip", "central directory exceeds 4 GiB"))?;
    out.extend_from_slice(&central);
    // End of central directory.
    out.extend_from_slice(&EOCD_MAGIC.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // this disk
    out.extend_from_slice(&0u16.to_le_bytes()); // cd disk
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    out.extend_from_slice(&cd_size.to_le_bytes());
    out.extend_from_slice(&cd_offset.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // comment len
    Ok(out)
}

fn rd_u16(b: &[u8], at: usize) -> Result<u16, FormatError> {
    b.get(at..at + 2)
        .map(|s| u16::from_le_bytes(arr2(s)))
        .ok_or_else(|| malformed("zip", "truncated"))
}

fn rd_u32(b: &[u8], at: usize) -> Result<u32, FormatError> {
    b.get(at..at + 4)
        .map(|s| u32::from_le_bytes(arr4(s)))
        .ok_or_else(|| malformed("zip", "truncated"))
}

/// Parse a ZIP archive, verifying each member's CRC-32. Only STORE members
/// are supported; a DEFLATE member produces [`FormatError::Unsupported`].
pub fn read_zip(bytes: &[u8]) -> Result<Vec<ZipEntry>, FormatError> {
    // Locate EOCD by scanning backwards (comment may pad the tail).
    if bytes.len() < 22 {
        return Err(malformed("zip", "too short for EOCD"));
    }
    let mut eocd = None;
    let scan_floor = bytes.len().saturating_sub(22 + u16::MAX as usize);
    for pos in (scan_floor..=bytes.len() - 22).rev() {
        if rd_u32(bytes, pos)? == EOCD_MAGIC {
            eocd = Some(pos);
            break;
        }
    }
    let eocd = eocd.ok_or_else(|| malformed("zip", "no end-of-central-directory"))?;
    let count = rd_u16(bytes, eocd + 10)? as usize;
    let cd_offset = rd_u32(bytes, eocd + 16)? as usize;

    let mut entries = Vec::with_capacity(count);
    let mut pos = cd_offset;
    for _ in 0..count {
        if rd_u32(bytes, pos)? != CENTRAL_MAGIC {
            return Err(malformed("zip", "bad central directory magic"));
        }
        let method = rd_u16(bytes, pos + 10)?;
        let crc = rd_u32(bytes, pos + 16)?;
        let csize = rd_u32(bytes, pos + 20)? as usize;
        let usize_ = rd_u32(bytes, pos + 24)? as usize;
        let name_len = rd_u16(bytes, pos + 28)? as usize;
        let extra_len = rd_u16(bytes, pos + 30)? as usize;
        let comment_len = rd_u16(bytes, pos + 32)? as usize;
        let local_offset = rd_u32(bytes, pos + 42)? as usize;
        let name = bytes
            .get(pos + 46..pos + 46 + name_len)
            .ok_or_else(|| malformed("zip", "truncated name"))?;
        let name = std::str::from_utf8(name)
            .map_err(|_| malformed("zip", "non-UTF-8 name"))?
            .to_string();
        pos += 46 + name_len + extra_len + comment_len;

        if method != 0 {
            return Err(unsupported(
                "zip",
                format!("compression method {method} in {name}"),
            ));
        }
        if csize != usize_ {
            return Err(malformed("zip", "stored sizes disagree"));
        }

        // Jump to the local header to find the data (local extra field may
        // differ from the central one).
        if rd_u32(bytes, local_offset)? != LOCAL_MAGIC {
            return Err(malformed("zip", "bad local header magic"));
        }
        let l_name = rd_u16(bytes, local_offset + 26)? as usize;
        let l_extra = rd_u16(bytes, local_offset + 28)? as usize;
        let data_start = local_offset + 30 + l_name + l_extra;
        let data = bytes
            .get(data_start..data_start + csize)
            .ok_or_else(|| malformed("zip", "truncated member data"))?
            .to_vec();
        if crc32(&data) != crc {
            return Err(FormatError::Io(drai_io::IoError::ChecksumMismatch {
                context: format!("zip member {name}"),
            }));
        }
        entries.push(ZipEntry { name, data });
    }
    Ok(entries)
}

/// Find one member by name.
pub fn find_entry<'a>(entries: &'a [ZipEntry], name: &str) -> Option<&'a ZipEntry> {
    entries.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ZipEntry> {
        vec![
            ZipEntry {
                name: "a.npy".into(),
                data: vec![1, 2, 3, 4, 5],
            },
            ZipEntry {
                name: "dir/b.npy".into(),
                data: (0..=255u8).collect(),
            },
            ZipEntry {
                name: "empty.npy".into(),
                data: vec![],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let entries = sample();
        let bytes = write_zip(&entries).unwrap();
        let back = read_zip(&bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_archive() {
        let bytes = write_zip(&[]).unwrap();
        assert_eq!(bytes.len(), 22); // EOCD only
        assert!(read_zip(&bytes).unwrap().is_empty());
    }

    #[test]
    fn structure_markers() {
        let bytes = write_zip(&sample()).unwrap();
        assert_eq!(&bytes[..4], &LOCAL_MAGIC.to_le_bytes());
        assert_eq!(
            &bytes[bytes.len() - 22..bytes.len() - 18],
            &EOCD_MAGIC.to_le_bytes()
        );
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = write_zip(&sample()).unwrap();
        // Flip one byte of the first member's data (offset 30 + name).
        bytes[30 + 5 + 2] ^= 0xFF;
        assert!(matches!(
            read_zip(&bytes),
            Err(FormatError::Io(drai_io::IoError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_zip(&sample()).unwrap();
        assert!(read_zip(&bytes[..bytes.len() - 4]).is_err());
        assert!(read_zip(&bytes[..10]).is_err());
        assert!(read_zip(b"PK").is_err());
    }

    #[test]
    fn find_by_name() {
        let entries = sample();
        assert_eq!(
            find_entry(&entries, "a.npy").unwrap().data,
            vec![1, 2, 3, 4, 5]
        );
        assert!(find_entry(&entries, "missing").is_none());
    }

    #[test]
    fn tolerates_trailing_comment_space() {
        // EOCD scan must find the record even with a trailing comment.
        let mut bytes = write_zip(&sample()).unwrap();
        let n = bytes.len();
        bytes[n - 2] = 4; // comment length = 4
        bytes.extend_from_slice(b"note");
        let back = read_zip(&bytes).unwrap();
        assert_eq!(back.len(), 3);
    }
}
