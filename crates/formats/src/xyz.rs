//! Extended XYZ structure files for the materials archetype.
//!
//! The XYZ format stores molecular/crystal frames as:
//!
//! ```text
//! <natoms>
//! <comment line: key=value properties, e.g. energy=-13.4 lattice="...">
//! <element> <x> <y> <z> [extra columns]
//! ...
//! ```
//!
//! OMat24/AFLOW-style pipelines parse millions of such frames before graph
//! encoding. This module supports multi-frame files, per-frame `key=value`
//! properties (quoted values allowed), and per-atom force columns.

use crate::{malformed, FormatError};
use std::collections::BTreeMap;

/// One atom: element symbol and Cartesian position (Å).
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Element symbol (e.g. "Si").
    pub element: String,
    /// Position [x, y, z].
    pub position: [f64; 3],
    /// Optional per-atom force [fx, fy, fz].
    pub force: Option<[f64; 3]>,
}

/// One structure frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Atoms in file order.
    pub atoms: Vec<Atom>,
    /// Frame-level properties from the comment line (`energy`, `lattice`...).
    pub properties: BTreeMap<String, String>,
}

impl Frame {
    /// Frame energy, if the `energy` property parses as f64.
    pub fn energy(&self) -> Option<f64> {
        self.properties.get("energy")?.parse().ok()
    }

    /// Count atoms of each element.
    pub fn composition(&self) -> BTreeMap<&str, usize> {
        let mut out = BTreeMap::new();
        for a in &self.atoms {
            *out.entry(a.element.as_str()).or_insert(0) += 1;
        }
        out
    }
}

/// Parse (possibly multi-frame) extended XYZ text.
pub fn parse_xyz(text: &str) -> Result<Vec<Frame>, FormatError> {
    let lines: Vec<&str> = text.lines().map(|l| l.trim_end_matches('\r')).collect();
    let mut frames = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        let natoms: usize = lines[i]
            .trim()
            .parse()
            .map_err(|_| malformed("xyz", format!("line {}: expected atom count", i + 1)))?;
        if i + 1 >= lines.len() {
            return Err(malformed("xyz", "missing comment line"));
        }
        let properties = parse_properties(lines[i + 1]);
        if i + 2 + natoms > lines.len() {
            return Err(malformed(
                "xyz",
                format!("frame at line {} truncated: wants {natoms} atoms", i + 1),
            ));
        }
        let mut atoms = Vec::with_capacity(natoms);
        for (k, raw) in lines[i + 2..i + 2 + natoms].iter().enumerate() {
            let cols: Vec<&str> = raw.split_whitespace().collect();
            if cols.len() != 4 && cols.len() != 7 {
                return Err(malformed(
                    "xyz",
                    format!(
                        "line {}: expected 4 or 7 columns, got {}",
                        i + 3 + k,
                        cols.len()
                    ),
                ));
            }
            let parse = |s: &str, what: &str| -> Result<f64, FormatError> {
                s.parse()
                    .map_err(|_| malformed("xyz", format!("line {}: bad {what} {s:?}", i + 3 + k)))
            };
            let position = [
                parse(cols[1], "x")?,
                parse(cols[2], "y")?,
                parse(cols[3], "z")?,
            ];
            let force = if cols.len() == 7 {
                Some([
                    parse(cols[4], "fx")?,
                    parse(cols[5], "fy")?,
                    parse(cols[6], "fz")?,
                ])
            } else {
                None
            };
            atoms.push(Atom {
                element: cols[0].to_string(),
                position,
                force,
            });
        }
        frames.push(Frame { atoms, properties });
        i += 2 + natoms;
    }
    Ok(frames)
}

/// Parse `key=value` pairs; values may be double-quoted to contain spaces.
fn parse_properties(line: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        let key_start = i;
        while i < chars.len() && chars[i] != '=' && !chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() || chars[i] != '=' {
            // A bare token (free-text comment) — skip it.
            continue;
        }
        let key: String = chars[key_start..i].iter().collect();
        i += 1; // '='
        let value = if i < chars.len() && chars[i] == '"' {
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != '"' {
                i += 1;
            }
            let v: String = chars[start..i].iter().collect();
            i += 1; // closing quote
            v
        } else {
            let start = i;
            while i < chars.len() && !chars[i].is_whitespace() {
                i += 1;
            }
            chars[start..i].iter().collect()
        };
        if !key.is_empty() {
            out.insert(key, value);
        }
    }
    out
}

/// Write frames as extended XYZ.
pub fn write_xyz(frames: &[Frame]) -> String {
    let mut out = String::new();
    for f in frames {
        out.push_str(&f.atoms.len().to_string());
        out.push('\n');
        let mut first = true;
        for (k, v) in &f.properties {
            if !first {
                out.push(' ');
            }
            first = false;
            if v.contains(' ') || v.is_empty() {
                out.push_str(&format!("{k}=\"{v}\""));
            } else {
                out.push_str(&format!("{k}={v}"));
            }
        }
        out.push('\n');
        for a in &f.atoms {
            out.push_str(&a.element);
            for c in a.position {
                out.push_str(&format!(" {c:.8}"));
            }
            if let Some(force) = a.force {
                for c in force {
                    out.push_str(&format!(" {c:.8}"));
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si_frame() -> Frame {
        Frame {
            atoms: vec![
                Atom {
                    element: "Si".into(),
                    position: [0.0, 0.0, 0.0],
                    force: Some([0.1, -0.2, 0.0]),
                },
                Atom {
                    element: "Si".into(),
                    position: [1.3575, 1.3575, 1.3575],
                    force: Some([-0.1, 0.2, 0.0]),
                },
                Atom {
                    element: "O".into(),
                    position: [2.715, 0.0, 0.0],
                    force: Some([0.0, 0.0, 0.0]),
                },
            ],
            properties: [
                ("energy".to_string(), "-13.47".to_string()),
                (
                    "lattice".to_string(),
                    "5.43 0 0 0 5.43 0 0 0 5.43".to_string(),
                ),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn round_trip_multi_frame() {
        let frames = vec![si_frame(), si_frame()];
        let text = write_xyz(&frames);
        let back = parse_xyz(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].atoms.len(), 3);
        assert_eq!(back[0].properties["energy"], "-13.47");
        assert_eq!(back[0].properties["lattice"], "5.43 0 0 0 5.43 0 0 0 5.43");
        for (a, b) in back[0].atoms.iter().zip(&frames[0].atoms) {
            assert_eq!(a.element, b.element);
            for k in 0..3 {
                assert!((a.position[k] - b.position[k]).abs() < 1e-8);
                assert!((a.force.unwrap()[k] - b.force.unwrap()[k]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn frame_accessors() {
        let f = si_frame();
        assert_eq!(f.energy(), Some(-13.47));
        let comp = f.composition();
        assert_eq!(comp["Si"], 2);
        assert_eq!(comp["O"], 1);
    }

    #[test]
    fn positions_without_forces() {
        let text = "2\nenergy=1.5\nH 0 0 0\nH 0 0 0.74\n";
        let frames = parse_xyz(text).unwrap();
        assert_eq!(frames[0].atoms[1].position[2], 0.74);
        assert_eq!(frames[0].atoms[0].force, None);
        assert_eq!(frames[0].energy(), Some(1.5));
    }

    #[test]
    fn free_text_comment_tolerated() {
        let text = "1\ngenerated by dft run 42 energy=-3.0\nC 1 2 3\n";
        let frames = parse_xyz(text).unwrap();
        assert_eq!(frames[0].energy(), Some(-3.0));
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_xyz("notanumber\ncomment\n").is_err());
        assert!(parse_xyz("2\ncomment\nH 0 0 0\n").is_err()); // missing atom
        assert!(parse_xyz("1\ncomment\nH 0 0\n").is_err()); // 3 columns
        assert!(parse_xyz("1\ncomment\nH a b c\n").is_err()); // bad float
        assert!(parse_xyz("1\n").is_err()); // no comment line
        assert!(parse_xyz("").unwrap().is_empty());
    }

    #[test]
    fn blank_lines_between_frames() {
        let text = "1\ne=1\nH 0 0 0\n\n\n1\ne=2\nHe 1 1 1\n";
        let frames = parse_xyz(text).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].atoms[0].element, "He");
    }

    #[test]
    fn scientific_notation_coordinates() {
        let text = "1\nx=y\nFe 1.5e-3 -2E2 0.0\n";
        let frames = parse_xyz(text).unwrap();
        assert_eq!(frames[0].atoms[0].position, [0.0015, -200.0, 0.0]);
    }
}
