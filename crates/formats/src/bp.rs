//! `bp` — an ADIOS-BP-inspired process-group log format, from scratch.
//!
//! ADIOS (Lofstead et al., the paper's reference [25]) organizes output as
//! an append-only sequence of *process groups* — one writer's variables for
//! one output step — plus a footer index that locates every group and
//! variable without scanning the file. That layout is what makes "log-based
//! I/O" fast on parallel filesystems: each writer streams its group
//! sequentially, and readers jump via the index.
//!
//! The materials archetype (HydraGNN-style) shards graph samples through
//! this module. Layout:
//!
//! ```text
//! "BPLT\x01"            magic
//! process groups:       [group header][var entries...]
//! footer index:         per group: name, step, offset, len, crc32c,
//!                       var names/dtypes/element counts
//! u64le footer_offset
//! u32le footer_crc32c
//! "BPLT"                trailer magic (validates the footer pointer)
//! ```

use crate::bytes::{arr4, arr8};
use crate::{malformed, FormatError};
use drai_io::checksum::crc32c;
use drai_tensor::{DType, Element, Tensor};

const MAGIC: &[u8; 5] = b"BPLT\x01";
const TRAILER: &[u8; 4] = b"BPLT";

/// One variable inside a process group.
#[derive(Debug, Clone, PartialEq)]
pub struct BpVar {
    /// Variable name (unique within the group).
    pub name: String,
    /// Element dtype.
    pub dtype: DType,
    /// Shape.
    pub shape: Vec<usize>,
    /// Raw little-endian data.
    pub data: Vec<u8>,
}

impl BpVar {
    /// Build from a tensor.
    pub fn from_tensor<T: Element>(name: &str, t: &Tensor<T>) -> BpVar {
        BpVar {
            name: name.to_string(),
            dtype: T::DTYPE,
            shape: t.shape().to_vec(),
            data: t.to_le_bytes(),
        }
    }

    /// Decode to a typed tensor.
    pub fn to_tensor<T: Element>(&self) -> Result<Tensor<T>, FormatError> {
        if T::DTYPE != self.dtype {
            return Err(malformed(
                "bp",
                format!(
                    "{}: stored {}, requested {}",
                    self.name,
                    self.dtype,
                    T::DTYPE
                ),
            ));
        }
        Tensor::from_le_bytes(&self.data, &self.shape)
            .map_err(|e| malformed("bp", format!("{}: {e}", self.name)))
    }
}

/// A process group: one writer's variables at one step.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessGroup {
    /// Logical writer name (e.g. "rank0", "sample-batch-3").
    pub name: String,
    /// Output step / sample index.
    pub step: u64,
    /// Variables in write order.
    pub vars: Vec<BpVar>,
}

impl ProcessGroup {
    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Option<&BpVar> {
        self.vars.iter().find(|v| v.name == name)
    }
}

/// Streaming writer: groups are appended; `finish` writes the footer.
#[derive(Debug, Default)]
pub struct BpWriter {
    buf: Vec<u8>,
    index: Vec<GroupIndexEntry>,
}

#[derive(Debug, Clone)]
struct GroupIndexEntry {
    name: String,
    step: u64,
    offset: u64,
    len: u64,
    crc: u32,
    vars: Vec<(String, DType, Vec<usize>)>,
}

impl BpWriter {
    /// New writer with the leading magic already emitted.
    pub fn new() -> Self {
        BpWriter {
            buf: MAGIC.to_vec(),
            index: Vec::new(),
        }
    }

    /// Append one process group (the log-structured write path: one
    /// sequential burst per group).
    pub fn append(&mut self, group: &ProcessGroup) {
        let offset = self.buf.len() as u64;
        let mut body = Vec::new();
        write_str(&mut body, &group.name);
        body.extend_from_slice(&group.step.to_le_bytes());
        body.extend_from_slice(&(group.vars.len() as u32).to_le_bytes());
        let mut var_index = Vec::with_capacity(group.vars.len());
        for v in &group.vars {
            write_str(&mut body, &v.name);
            body.push(v.dtype.code());
            body.extend_from_slice(&(v.shape.len() as u32).to_le_bytes());
            for &d in &v.shape {
                body.extend_from_slice(&(d as u64).to_le_bytes());
            }
            body.extend_from_slice(&(v.data.len() as u64).to_le_bytes());
            body.extend_from_slice(&v.data);
            var_index.push((v.name.clone(), v.dtype, v.shape.clone()));
        }
        let crc = crc32c(&body);
        self.buf.extend_from_slice(&body);
        self.index.push(GroupIndexEntry {
            name: group.name.clone(),
            step: group.step,
            offset,
            len: body.len() as u64,
            crc,
            vars: var_index,
        });
    }

    /// Current payload size (before footer).
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Emit the footer and return the finished file bytes.
    pub fn finish(self) -> Vec<u8> {
        let mut out = self.buf;
        let footer_offset = out.len() as u64;
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            write_str(&mut footer, &e.name);
            footer.extend_from_slice(&e.step.to_le_bytes());
            footer.extend_from_slice(&e.offset.to_le_bytes());
            footer.extend_from_slice(&e.len.to_le_bytes());
            footer.extend_from_slice(&e.crc.to_le_bytes());
            footer.extend_from_slice(&(e.vars.len() as u32).to_le_bytes());
            for (name, dtype, shape) in &e.vars {
                write_str(&mut footer, name);
                footer.push(dtype.code());
                footer.extend_from_slice(&(shape.len() as u32).to_le_bytes());
                for &d in shape {
                    footer.extend_from_slice(&(d as u64).to_le_bytes());
                }
            }
        }
        let crc = crc32c(&footer);
        out.extend_from_slice(&footer);
        out.extend_from_slice(&footer_offset.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(TRAILER);
        out
    }
}

/// Footer metadata for one group (what a reader scans before deciding
/// which groups to fetch).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMeta {
    /// Group name.
    pub name: String,
    /// Step.
    pub step: u64,
    /// Variable names, dtypes and shapes (no data).
    pub vars: Vec<(String, DType, Vec<usize>)>,
}

/// Reader over a finished BP file.
pub struct BpReader<'a> {
    bytes: &'a [u8],
    index: Vec<GroupIndexEntry>,
}

impl<'a> BpReader<'a> {
    /// Open from bytes: validates magic, trailer, and footer CRC.
    pub fn open(bytes: &'a [u8]) -> Result<BpReader<'a>, FormatError> {
        if bytes.len() < MAGIC.len() + 16 || &bytes[..5] != MAGIC {
            return Err(malformed("bp", "bad magic"));
        }
        if &bytes[bytes.len() - 4..] != TRAILER {
            return Err(malformed("bp", "bad trailer"));
        }
        let tail = bytes.len() - 16;
        let footer_offset = u64::from_le_bytes(arr8(&bytes[tail..tail + 8])) as usize;
        let footer_crc = u32::from_le_bytes(arr4(&bytes[tail + 8..tail + 12]));
        let footer = bytes
            .get(footer_offset..tail)
            .ok_or_else(|| malformed("bp", "footer offset out of range"))?;
        if crc32c(footer) != footer_crc {
            return Err(FormatError::Io(drai_io::IoError::ChecksumMismatch {
                context: "bp footer".into(),
            }));
        }
        let mut c = Cur { b: footer, p: 0 };
        let ngroups = c.u32()? as usize;
        let mut index = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let name = c.str()?;
            let step = c.u64()?;
            let offset = c.u64()?;
            let len = c.u64()?;
            let crc = c.u32()?;
            let nvars = c.u32()? as usize;
            let mut vars = Vec::with_capacity(nvars);
            for _ in 0..nvars {
                let vname = c.str()?;
                let dtype = DType::from_code(c.u8()?)
                    .ok_or_else(|| malformed("bp", "bad dtype in footer"))?;
                let ndims = c.u32()? as usize;
                let mut shape = Vec::with_capacity(ndims);
                for _ in 0..ndims {
                    shape.push(c.u64()? as usize);
                }
                vars.push((vname, dtype, shape));
            }
            index.push(GroupIndexEntry {
                name,
                step,
                offset,
                len,
                crc,
                vars,
            });
        }
        Ok(BpReader { bytes, index })
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.index.len()
    }

    /// Footer-only metadata (no payload reads) — the "cheap scan" path.
    pub fn metadata(&self) -> Vec<GroupMeta> {
        self.index
            .iter()
            .map(|e| GroupMeta {
                name: e.name.clone(),
                step: e.step,
                vars: e.vars.clone(),
            })
            .collect()
    }

    /// Fetch and decode one group by index, verifying its CRC.
    pub fn read_group(&self, i: usize) -> Result<ProcessGroup, FormatError> {
        let e = self
            .index
            .get(i)
            .ok_or_else(|| malformed("bp", format!("group {i} out of range")))?;
        let body = self
            .bytes
            .get(e.offset as usize..(e.offset + e.len) as usize)
            .ok_or_else(|| malformed("bp", "group body out of range"))?;
        if crc32c(body) != e.crc {
            return Err(FormatError::Io(drai_io::IoError::ChecksumMismatch {
                context: format!("bp group {}", e.name),
            }));
        }
        let mut c = Cur { b: body, p: 0 };
        let name = c.str()?;
        let step = c.u64()?;
        let nvars = c.u32()? as usize;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let vname = c.str()?;
            let dtype = DType::from_code(c.u8()?).ok_or_else(|| malformed("bp", "bad dtype"))?;
            let ndims = c.u32()? as usize;
            let mut shape = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                shape.push(c.u64()? as usize);
            }
            let dlen = c.u64()? as usize;
            let data = c.take(dlen)?.to_vec();
            let elems: usize = shape.iter().product();
            if data.len() != elems * dtype.size_bytes() {
                return Err(malformed("bp", format!("{vname}: data/shape mismatch")));
            }
            vars.push(BpVar {
                name: vname,
                dtype,
                shape,
                data,
            });
        }
        Ok(ProcessGroup { name, step, vars })
    }

    /// Read every group.
    pub fn read_all(&self) -> Result<Vec<ProcessGroup>, FormatError> {
        (0..self.group_count())
            .map(|i| self.read_group(i))
            .collect()
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let s = self
            .b
            .get(self.p..self.p + n)
            .ok_or_else(|| malformed("bp", "truncated"))?;
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)))
    }
    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)))
    }
    fn str(&mut self) -> Result<String, FormatError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| malformed("bp", "non-UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_group(step: u64, natoms: usize) -> ProcessGroup {
        let pos = Tensor::from_fn(&[natoms, 3], |i| i as f64 * 0.1);
        let species =
            Tensor::from_vec((0..natoms).map(|i| (i % 4) as i64).collect(), &[natoms]).unwrap();
        let edges = Tensor::from_vec(
            (0..natoms * 2).map(|i| (i % natoms) as i64).collect(),
            &[natoms, 2],
        )
        .unwrap();
        ProcessGroup {
            name: format!("sample-{step}"),
            step,
            vars: vec![
                BpVar::from_tensor("positions", &pos),
                BpVar::from_tensor("species", &species),
                BpVar::from_tensor("edges", &edges),
            ],
        }
    }

    #[test]
    fn round_trip_multiple_groups() {
        let mut w = BpWriter::new();
        let groups: Vec<ProcessGroup> = (0..5).map(|s| graph_group(s, 3 + s as usize)).collect();
        for g in &groups {
            w.append(g);
        }
        let bytes = w.finish();
        let r = BpReader::open(&bytes).unwrap();
        assert_eq!(r.group_count(), 5);
        assert_eq!(r.read_all().unwrap(), groups);
    }

    #[test]
    fn metadata_scan_without_payload() {
        let mut w = BpWriter::new();
        w.append(&graph_group(7, 10));
        let bytes = w.finish();
        let r = BpReader::open(&bytes).unwrap();
        let meta = r.metadata();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].name, "sample-7");
        assert_eq!(meta[0].step, 7);
        assert_eq!(meta[0].vars.len(), 3);
        assert_eq!(
            meta[0].vars[0],
            ("positions".to_string(), DType::F64, vec![10, 3])
        );
    }

    #[test]
    fn typed_variable_access() {
        let mut w = BpWriter::new();
        w.append(&graph_group(0, 4));
        let bytes = w.finish();
        let r = BpReader::open(&bytes).unwrap();
        let g = r.read_group(0).unwrap();
        let pos: Tensor<f64> = g.var("positions").unwrap().to_tensor().unwrap();
        assert_eq!(pos.shape(), &[4, 3]);
        assert!(g.var("positions").unwrap().to_tensor::<f32>().is_err());
        assert!(g.var("missing").is_none());
    }

    #[test]
    fn empty_file() {
        let bytes = BpWriter::new().finish();
        let r = BpReader::open(&bytes).unwrap();
        assert_eq!(r.group_count(), 0);
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn group_corruption_detected() {
        let mut w = BpWriter::new();
        w.append(&graph_group(0, 8));
        let mut bytes = w.finish();
        bytes[30] ^= 0xFF; // inside group body
        let r = BpReader::open(&bytes).unwrap(); // footer still fine
        assert!(matches!(
            r.read_group(0),
            Err(FormatError::Io(drai_io::IoError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn footer_corruption_detected() {
        let mut w = BpWriter::new();
        w.append(&graph_group(0, 8));
        let mut bytes = w.finish();
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF; // inside footer
        assert!(BpReader::open(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut w = BpWriter::new();
        w.append(&graph_group(0, 8));
        let bytes = w.finish();
        assert!(BpReader::open(&bytes[..bytes.len() - 1]).is_err());
        assert!(BpReader::open(&bytes[..8]).is_err());
        assert!(BpReader::open(b"not a bp file at all").is_err());
    }

    #[test]
    fn append_is_log_structured() {
        // Offsets must be strictly increasing (sequential log writes).
        let mut w = BpWriter::new();
        for s in 0..4 {
            w.append(&graph_group(s, 5));
        }
        let offsets: Vec<u64> = w.index.iter().map(|e| e.offset).collect();
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(offsets[0], MAGIC.len() as u64);
    }
}
