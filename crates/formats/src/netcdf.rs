//! NetCDF-3 "classic" (CDF-1) files, written and parsed from scratch.
//!
//! NetCDF is the lingua franca of climate data (CMIP6, ERA5): a
//! self-describing container of named dimensions, attributes, and typed
//! n-dimensional variables. This module implements the classic CDF-1
//! binary layout per the published spec:
//!
//! ```text
//! "CDF\x01"  magic
//! numrecs    u32be (number of records along the unlimited dimension)
//! dim_list   NC_DIMENSION(0x0A) + [name, length]...   (length 0 = record dim)
//! gatt_list  NC_ATTRIBUTE(0x0C) + [name, nc_type, n, values]...
//! var_list   NC_VARIABLE(0x0B)  + [name, dimids, vatts, nc_type, vsize, begin]...
//! data       fixed-size variables, then record variables interleaved
//!            record-by-record; every block padded to 4 bytes
//! ```
//!
//! All integers and floats are **big-endian**. Names and values are padded
//! to 4-byte boundaries with zeros. The subset implemented: all six classic
//! types, one optional unlimited (record) dimension, global and per-variable
//! attributes. Not implemented (rejected on read): CDF-2/CDF-5 offsets,
//! fill-value defaulting beyond explicit data.

use crate::bytes::{arr2, arr4, arr8};
use crate::{malformed, unsupported, FormatError};

const MAGIC: &[u8; 4] = b"CDF\x01";
const TAG_DIMENSION: u32 = 0x0A;
const TAG_VARIABLE: u32 = 0x0B;
const TAG_ATTRIBUTE: u32 = 0x0C;
const TAG_ABSENT: u32 = 0x00;

/// Classic NetCDF external types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NcType {
    /// 8-bit signed (NC_BYTE).
    Byte,
    /// 8-bit character (NC_CHAR).
    Char,
    /// 16-bit signed big-endian (NC_SHORT).
    Short,
    /// 32-bit signed big-endian (NC_INT).
    Int,
    /// 32-bit IEEE float big-endian (NC_FLOAT).
    Float,
    /// 64-bit IEEE float big-endian (NC_DOUBLE).
    Double,
}

impl NcType {
    const fn code(self) -> u32 {
        match self {
            NcType::Byte => 1,
            NcType::Char => 2,
            NcType::Short => 3,
            NcType::Int => 4,
            NcType::Float => 5,
            NcType::Double => 6,
        }
    }

    fn from_code(code: u32) -> Result<NcType, FormatError> {
        Ok(match code {
            1 => NcType::Byte,
            2 => NcType::Char,
            3 => NcType::Short,
            4 => NcType::Int,
            5 => NcType::Float,
            6 => NcType::Double,
            other => return Err(malformed("netcdf", format!("nc_type {other}"))),
        })
    }

    /// External size in bytes.
    pub const fn size(self) -> usize {
        match self {
            NcType::Byte | NcType::Char => 1,
            NcType::Short => 2,
            NcType::Int | NcType::Float => 4,
            NcType::Double => 8,
        }
    }
}

/// Typed attribute or variable payload (host representation).
#[derive(Debug, Clone, PartialEq)]
pub enum NcValues {
    /// NC_BYTE.
    Byte(Vec<i8>),
    /// NC_CHAR (text).
    Char(String),
    /// NC_SHORT.
    Short(Vec<i16>),
    /// NC_INT.
    Int(Vec<i32>),
    /// NC_FLOAT.
    Float(Vec<f32>),
    /// NC_DOUBLE.
    Double(Vec<f64>),
}

impl NcValues {
    /// The external type of this payload.
    pub fn nc_type(&self) -> NcType {
        match self {
            NcValues::Byte(_) => NcType::Byte,
            NcValues::Char(_) => NcType::Char,
            NcValues::Short(_) => NcType::Short,
            NcValues::Int(_) => NcType::Int,
            NcValues::Float(_) => NcType::Float,
            NcValues::Double(_) => NcType::Double,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            NcValues::Byte(v) => v.len(),
            NcValues::Char(s) => s.len(),
            NcValues::Short(v) => v.len(),
            NcValues::Int(v) => v.len(),
            NcValues::Float(v) => v.len(),
            NcValues::Double(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements as f64 (chars become code points) — convenient for
    /// normalization statistics over any variable.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            NcValues::Byte(v) => v.iter().map(|&x| x as f64).collect(),
            NcValues::Char(s) => s.bytes().map(|b| b as f64).collect(),
            NcValues::Short(v) => v.iter().map(|&x| x as f64).collect(),
            NcValues::Int(v) => v.iter().map(|&x| x as f64).collect(),
            NcValues::Float(v) => v.iter().map(|&x| x as f64).collect(),
            NcValues::Double(v) => v.clone(),
        }
    }

    fn write_be(&self, out: &mut Vec<u8>) {
        match self {
            NcValues::Byte(v) => out.extend(v.iter().map(|&x| x as u8)),
            NcValues::Char(s) => out.extend_from_slice(s.as_bytes()),
            NcValues::Short(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Int(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Float(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
            NcValues::Double(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_be_bytes());
                }
            }
        }
    }

    fn read_be(typ: NcType, n: usize, bytes: &[u8]) -> Result<NcValues, FormatError> {
        let need = n * typ.size();
        let b = bytes
            .get(..need)
            .ok_or_else(|| malformed("netcdf", "truncated values"))?;
        Ok(match typ {
            NcType::Byte => NcValues::Byte(b.iter().map(|&x| x as i8).collect()),
            NcType::Char => NcValues::Char(
                std::str::from_utf8(b)
                    .map_err(|_| malformed("netcdf", "non-UTF-8 char data"))?
                    .to_string(),
            ),
            NcType::Short => NcValues::Short(
                b.chunks_exact(2)
                    .map(|c| i16::from_be_bytes(arr2(c)))
                    .collect(),
            ),
            NcType::Int => NcValues::Int(
                b.chunks_exact(4)
                    .map(|c| i32::from_be_bytes(arr4(c)))
                    .collect(),
            ),
            NcType::Float => NcValues::Float(
                b.chunks_exact(4)
                    .map(|c| f32::from_be_bytes(arr4(c)))
                    .collect(),
            ),
            NcType::Double => NcValues::Double(
                b.chunks_exact(8)
                    .map(|c| f64::from_be_bytes(arr8(c)))
                    .collect(),
            ),
        })
    }
}

/// A named dimension. `size == 0` in the file marks the record dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcDim {
    /// Dimension name.
    pub name: String,
    /// Length (for the record dimension, the *current* record count).
    pub size: usize,
    /// True for the unlimited dimension.
    pub is_record: bool,
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NcAttr {
    /// Attribute name.
    pub name: String,
    /// Attribute payload.
    pub values: NcValues,
}

/// A variable: name, dimension ids (indices into [`NcFile::dims`]),
/// attributes, and data.
#[derive(Debug, Clone, PartialEq)]
pub struct NcVar {
    /// Variable name.
    pub name: String,
    /// Dimension indices, outermost first. A variable whose first dim is
    /// the record dimension is a record variable.
    pub dims: Vec<usize>,
    /// Per-variable attributes.
    pub attrs: Vec<NcAttr>,
    /// Row-major data (record dim outermost, complete over all records).
    pub data: NcValues,
}

/// An in-memory NetCDF-3 dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NcFile {
    /// All dimensions (at most one record dimension).
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub global_attrs: Vec<NcAttr>,
    /// Variables.
    pub vars: Vec<NcVar>,
}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

fn write_padded(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(bytes);
    out.resize(out.len() + (pad4(bytes.len()) - bytes.len()), 0);
}

fn write_name(out: &mut Vec<u8>, name: &str) {
    out.extend_from_slice(&(name.len() as u32).to_be_bytes());
    write_padded(out, name.as_bytes());
}

fn write_attrs(out: &mut Vec<u8>, attrs: &[NcAttr]) {
    if attrs.is_empty() {
        out.extend_from_slice(&TAG_ABSENT.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        return;
    }
    out.extend_from_slice(&TAG_ATTRIBUTE.to_be_bytes());
    out.extend_from_slice(&(attrs.len() as u32).to_be_bytes());
    for a in attrs {
        write_name(out, &a.name);
        out.extend_from_slice(&a.values.nc_type().code().to_be_bytes());
        out.extend_from_slice(&(a.values.len() as u32).to_be_bytes());
        let mut vals = Vec::new();
        a.values.write_be(&mut vals);
        write_padded(out, &vals);
    }
}

impl NcFile {
    /// Index of the record dimension, if any.
    pub fn record_dim(&self) -> Option<usize> {
        self.dims.iter().position(|d| d.is_record)
    }

    /// Number of records (length of the record dimension; 0 if none).
    pub fn num_records(&self) -> usize {
        self.record_dim().map(|i| self.dims[i].size).unwrap_or(0)
    }

    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Option<&NcVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Shape of a variable (dimension lengths, record dim included at its
    /// current length).
    pub fn var_shape(&self, var: &NcVar) -> Vec<usize> {
        var.dims.iter().map(|&d| self.dims[d].size).collect()
    }

    /// Per-record element count of a variable (product of non-record dims).
    fn record_slab_elems(&self, var: &NcVar) -> usize {
        var.dims
            .iter()
            .filter(|&&d| !self.dims[d].is_record)
            .map(|&d| self.dims[d].size)
            .product()
    }

    fn is_record_var(&self, var: &NcVar) -> bool {
        var.dims
            .first()
            .map(|&d| self.dims[d].is_record)
            .unwrap_or(false)
    }

    /// Validate internal consistency (dim ids in range, data sizes match
    /// shapes, at most one record dim, record dim only first).
    pub fn validate(&self) -> Result<(), FormatError> {
        let rec_count = self.dims.iter().filter(|d| d.is_record).count();
        if rec_count > 1 {
            return Err(malformed("netcdf", "more than one record dimension"));
        }
        for v in &self.vars {
            for (pos, &d) in v.dims.iter().enumerate() {
                if d >= self.dims.len() {
                    return Err(malformed("netcdf", format!("{}: bad dim id {d}", v.name)));
                }
                if self.dims[d].is_record && pos != 0 {
                    return Err(malformed(
                        "netcdf",
                        format!("{}: record dim must be outermost", v.name),
                    ));
                }
            }
            let expect: usize = self.var_shape(v).iter().product();
            if v.data.len() != expect {
                return Err(malformed(
                    "netcdf",
                    format!(
                        "{}: data has {} elems, shape wants {expect}",
                        v.name,
                        v.data.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Serialize to CDF-1 bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, FormatError> {
        self.validate()?;
        let numrecs = self.num_records();

        // --- Compute per-variable vsize and begin offsets. ---
        // Header size must be known first; assemble header with placeholder
        // begins, then patch (begins are u32be at known offsets in CDF-1).
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&(numrecs as u32).to_be_bytes());

        // dim_list
        if self.dims.is_empty() {
            header.extend_from_slice(&TAG_ABSENT.to_be_bytes());
            header.extend_from_slice(&0u32.to_be_bytes());
        } else {
            header.extend_from_slice(&TAG_DIMENSION.to_be_bytes());
            header.extend_from_slice(&(self.dims.len() as u32).to_be_bytes());
            for d in &self.dims {
                write_name(&mut header, &d.name);
                let stored = if d.is_record { 0 } else { d.size as u32 };
                header.extend_from_slice(&stored.to_be_bytes());
            }
        }

        // gatt_list
        write_attrs(&mut header, &self.global_attrs);

        // var_list with begin placeholders.
        let mut begin_patches = Vec::new(); // (header offset, var index)
        if self.vars.is_empty() {
            header.extend_from_slice(&TAG_ABSENT.to_be_bytes());
            header.extend_from_slice(&0u32.to_be_bytes());
        } else {
            header.extend_from_slice(&TAG_VARIABLE.to_be_bytes());
            header.extend_from_slice(&(self.vars.len() as u32).to_be_bytes());
            for (vi, v) in self.vars.iter().enumerate() {
                write_name(&mut header, &v.name);
                header.extend_from_slice(&(v.dims.len() as u32).to_be_bytes());
                for &d in &v.dims {
                    header.extend_from_slice(&(d as u32).to_be_bytes());
                }
                write_attrs(&mut header, &v.attrs);
                header.extend_from_slice(&v.data.nc_type().code().to_be_bytes());
                let vsize = self.vsize(v);
                header.extend_from_slice(&(vsize as u32).to_be_bytes());
                begin_patches.push((header.len(), vi));
                header.extend_from_slice(&0u32.to_be_bytes()); // begin
            }
        }

        // --- Lay out data: fixed vars first, then the record section. ---
        let header_len = header.len();
        let mut begins = vec![0usize; self.vars.len()];
        let mut offset = header_len;
        for (vi, v) in self.vars.iter().enumerate() {
            if !self.is_record_var(v) {
                begins[vi] = offset;
                offset += self.vsize(v);
            }
        }
        let record_section = offset;
        let mut rec_off = record_section;
        for (vi, v) in self.vars.iter().enumerate() {
            if self.is_record_var(v) {
                begins[vi] = rec_off;
                rec_off += self.vsize(v); // vsize of a record var = one record slab
            }
        }
        let record_stride: usize = self
            .vars
            .iter()
            .filter(|v| self.is_record_var(v))
            .map(|v| self.vsize(v))
            .sum();

        for (patch_at, vi) in &begin_patches {
            let begin = u32::try_from(begins[*vi])
                .map_err(|_| unsupported("netcdf", "file exceeds CDF-1 2 GiB offsets"))?;
            header[*patch_at..*patch_at + 4].copy_from_slice(&begin.to_be_bytes());
        }

        // --- Emit data. ---
        let total = record_section + record_stride * numrecs;
        let mut out = header;
        out.resize(total, 0);
        for (vi, v) in self.vars.iter().enumerate() {
            let mut raw = Vec::new();
            v.data.write_be(&mut raw);
            if !self.is_record_var(v) {
                out[begins[vi]..begins[vi] + raw.len()].copy_from_slice(&raw);
            } else {
                // Interleave: record r of this variable at begin + r*stride.
                let slab = self.record_slab_elems(v) * v.data.nc_type().size();
                for r in 0..numrecs {
                    let src = &raw[r * slab..(r + 1) * slab];
                    let dst = begins[vi] + r * record_stride;
                    out[dst..dst + slab].copy_from_slice(src);
                }
            }
        }
        Ok(out)
    }

    /// vsize per spec: external size of one "chunk" (whole var for fixed
    /// vars, one record slab for record vars), rounded up to 4 bytes.
    fn vsize(&self, v: &NcVar) -> usize {
        pad4(self.record_slab_elems(v) * v.data.nc_type().size())
    }

    /// Parse CDF-1 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<NcFile, FormatError> {
        let mut p = Cursor { bytes, pos: 0 };
        let magic = p.take(4)?;
        if &magic[..3] != b"CDF" {
            return Err(malformed("netcdf", "bad magic"));
        }
        match magic[3] {
            1 => {}
            2 | 5 => return Err(unsupported("netcdf", format!("CDF-{} offsets", magic[3]))),
            v => return Err(malformed("netcdf", format!("version byte {v}"))),
        }
        let numrecs = p.u32()? as usize;

        // dims
        let (tag, n) = (p.u32()?, p.u32()? as usize);
        let mut dims = Vec::with_capacity(n);
        if tag == TAG_DIMENSION {
            for _ in 0..n {
                let name = p.name()?;
                let size = p.u32()? as usize;
                dims.push(NcDim {
                    name,
                    size: if size == 0 { numrecs } else { size },
                    is_record: size == 0,
                });
            }
        } else if tag != TAG_ABSENT || n != 0 {
            return Err(malformed("netcdf", "bad dim_list tag"));
        }

        let global_attrs = p.attrs()?;

        // vars
        let (tag, n) = (p.u32()?, p.u32()? as usize);
        struct RawVar {
            name: String,
            dims: Vec<usize>,
            attrs: Vec<NcAttr>,
            typ: NcType,
            begin: usize,
        }
        let mut raw_vars = Vec::with_capacity(n);
        if tag == TAG_VARIABLE {
            for _ in 0..n {
                let name = p.name()?;
                let ndims = p.u32()? as usize;
                let mut vdims = Vec::with_capacity(ndims);
                for _ in 0..ndims {
                    let d = p.u32()? as usize;
                    if d >= dims.len() {
                        return Err(malformed("netcdf", format!("{name}: dim id {d}")));
                    }
                    vdims.push(d);
                }
                let attrs = p.attrs()?;
                let typ = NcType::from_code(p.u32()?)?;
                let _vsize = p.u32()?;
                let begin = p.u32()? as usize;
                raw_vars.push(RawVar {
                    name,
                    dims: vdims,
                    attrs,
                    typ,
                    begin,
                });
            }
        } else if tag != TAG_ABSENT || n != 0 {
            return Err(malformed("netcdf", "bad var_list tag"));
        }

        // Record stride = sum of record-var vsizes.
        let is_rec = |v: &RawVar| v.dims.first().map(|&d| dims[d].is_record).unwrap_or(false);
        let slab_elems = |v: &RawVar| -> usize {
            v.dims
                .iter()
                .filter(|&&d| !dims[d].is_record)
                .map(|&d| dims[d].size)
                .product()
        };
        let record_stride: usize = raw_vars
            .iter()
            .filter(|v| is_rec(v))
            .map(|v| pad4(slab_elems(v) * v.typ.size()))
            .sum();

        let mut vars = Vec::with_capacity(raw_vars.len());
        for v in raw_vars {
            let slab = slab_elems(&v);
            let data = if is_rec(&v) {
                let slab_bytes = slab * v.typ.size();
                let mut all = Vec::with_capacity(numrecs * slab_bytes);
                for r in 0..numrecs {
                    let at = v.begin + r * record_stride;
                    let chunk = bytes.get(at..at + slab_bytes).ok_or_else(|| {
                        malformed("netcdf", format!("{}: truncated record {r}", v.name))
                    })?;
                    all.extend_from_slice(chunk);
                }
                NcValues::read_be(v.typ, numrecs * slab, &all)?
            } else {
                let at = v.begin;
                let chunk = bytes
                    .get(at..)
                    .ok_or_else(|| malformed("netcdf", format!("{}: bad begin", v.name)))?;
                NcValues::read_be(v.typ, slab, chunk)?
            };
            vars.push(NcVar {
                name: v.name,
                dims: v.dims,
                attrs: v.attrs,
                data,
            });
        }

        let file = NcFile {
            dims,
            global_attrs,
            vars,
        };
        file.validate()?;
        Ok(file)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| malformed("netcdf", "truncated header"))?;
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_be_bytes(arr4(self.take(4)?)))
    }

    fn name(&mut self) -> Result<String, FormatError> {
        let len = self.u32()? as usize;
        let raw = self.take(pad4(len))?;
        std::str::from_utf8(&raw[..len])
            .map(str::to_string)
            .map_err(|_| malformed("netcdf", "non-UTF-8 name"))
    }

    fn attrs(&mut self) -> Result<Vec<NcAttr>, FormatError> {
        let tag = self.u32()?;
        let n = self.u32()? as usize;
        if tag == TAG_ABSENT {
            if n != 0 {
                return Err(malformed("netcdf", "ABSENT with nonzero count"));
            }
            return Ok(Vec::new());
        }
        if tag != TAG_ATTRIBUTE {
            return Err(malformed("netcdf", "bad att_list tag"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.name()?;
            let typ = NcType::from_code(self.u32()?)?;
            let count = self.u32()? as usize;
            let raw = self.take(pad4(count * typ.size()))?;
            out.push(NcAttr {
                name,
                values: NcValues::read_be(typ, count, raw)?,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn climate_like_file() -> NcFile {
        // time(record) x lat(2) x lon(3) temperature + fixed coords.
        let nlat = 2;
        let nlon = 3;
        let nt = 4;
        NcFile {
            dims: vec![
                NcDim {
                    name: "time".into(),
                    size: nt,
                    is_record: true,
                },
                NcDim {
                    name: "lat".into(),
                    size: nlat,
                    is_record: false,
                },
                NcDim {
                    name: "lon".into(),
                    size: nlon,
                    is_record: false,
                },
            ],
            global_attrs: vec![
                NcAttr {
                    name: "title".into(),
                    values: NcValues::Char("synthetic CMIP-like output".into()),
                },
                NcAttr {
                    name: "realization".into(),
                    values: NcValues::Int(vec![1]),
                },
            ],
            vars: vec![
                NcVar {
                    name: "lat".into(),
                    dims: vec![1],
                    attrs: vec![NcAttr {
                        name: "units".into(),
                        values: NcValues::Char("degrees_north".into()),
                    }],
                    data: NcValues::Double(vec![-45.0, 45.0]),
                },
                NcVar {
                    name: "lon".into(),
                    dims: vec![2],
                    attrs: vec![],
                    data: NcValues::Double(vec![60.0, 180.0, 300.0]),
                },
                NcVar {
                    name: "tas".into(),
                    dims: vec![0, 1, 2],
                    attrs: vec![NcAttr {
                        name: "units".into(),
                        values: NcValues::Char("K".into()),
                    }],
                    data: NcValues::Float(
                        (0..nt * nlat * nlon).map(|i| 250.0 + i as f32).collect(),
                    ),
                },
                NcVar {
                    name: "time".into(),
                    dims: vec![0],
                    attrs: vec![],
                    data: NcValues::Double(vec![0.0, 6.0, 12.0, 18.0]),
                },
            ],
        }
    }

    #[test]
    fn round_trip_with_record_dim() {
        let f = climate_like_file();
        let bytes = f.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn header_bytes_follow_spec() {
        let f = climate_like_file();
        let bytes = f.to_bytes().unwrap();
        assert_eq!(&bytes[..4], b"CDF\x01");
        // numrecs = 4
        assert_eq!(&bytes[4..8], &4u32.to_be_bytes());
        // dim_list tag.
        assert_eq!(&bytes[8..12], &TAG_DIMENSION.to_be_bytes());
        assert_eq!(&bytes[12..16], &3u32.to_be_bytes());
        // First dim name "time": length 4, then padded name.
        assert_eq!(&bytes[16..20], &4u32.to_be_bytes());
        assert_eq!(&bytes[20..24], b"time");
        // Record dim stored as 0.
        assert_eq!(&bytes[24..28], &0u32.to_be_bytes());
    }

    #[test]
    fn fixed_only_file() {
        let f = NcFile {
            dims: vec![NcDim {
                name: "x".into(),
                size: 5,
                is_record: false,
            }],
            global_attrs: vec![],
            vars: vec![NcVar {
                name: "v".into(),
                dims: vec![0],
                attrs: vec![],
                data: NcValues::Short(vec![1, -2, 3, -4, 5]),
            }],
        };
        let back = NcFile::from_bytes(&f.to_bytes().unwrap()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.num_records(), 0);
    }

    #[test]
    fn empty_file() {
        let f = NcFile::default();
        let bytes = f.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn multiple_record_vars_interleave() {
        // Two record variables: reader must de-interleave correctly.
        let f = NcFile {
            dims: vec![
                NcDim {
                    name: "t".into(),
                    size: 3,
                    is_record: true,
                },
                NcDim {
                    name: "x".into(),
                    size: 2,
                    is_record: false,
                },
            ],
            global_attrs: vec![],
            vars: vec![
                NcVar {
                    name: "a".into(),
                    dims: vec![0, 1],
                    attrs: vec![],
                    data: NcValues::Int((0..6).collect()),
                },
                NcVar {
                    name: "b".into(),
                    dims: vec![0],
                    attrs: vec![],
                    data: NcValues::Double(vec![10.0, 20.0, 30.0]),
                },
            ],
        };
        let bytes = f.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(
            back.var("b").unwrap().data,
            NcValues::Double(vec![10.0, 20.0, 30.0])
        );
    }

    #[test]
    fn byte_and_char_padding() {
        // 5 bytes of NC_BYTE must be padded to 8 in the file.
        let f = NcFile {
            dims: vec![NcDim {
                name: "n".into(),
                size: 5,
                is_record: false,
            }],
            global_attrs: vec![NcAttr {
                name: "note".into(),
                values: NcValues::Char("abc".into()), // padded to 4
            }],
            vars: vec![NcVar {
                name: "flags".into(),
                dims: vec![0],
                attrs: vec![],
                data: NcValues::Byte(vec![-1, 2, -3, 4, -5]),
            }],
        };
        let back = NcFile::from_bytes(&f.to_bytes().unwrap()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut f = climate_like_file();
        f.vars[2].data = NcValues::Float(vec![1.0; 5]); // wrong size
        assert!(f.to_bytes().is_err());

        let mut g = climate_like_file();
        g.vars[2].dims = vec![1, 0, 2]; // record dim not outermost
        assert!(g.to_bytes().is_err());
    }

    #[test]
    fn cdf2_rejected() {
        let mut bytes = climate_like_file().to_bytes().unwrap();
        bytes[3] = 2;
        assert!(matches!(
            NcFile::from_bytes(&bytes),
            Err(FormatError::Unsupported { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = climate_like_file().to_bytes().unwrap();
        assert!(NcFile::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(NcFile::from_bytes(&bytes[..10]).is_err());
        assert!(NcFile::from_bytes(b"JUNK").is_err());
    }

    #[test]
    fn accessors() {
        let f = climate_like_file();
        assert_eq!(f.record_dim(), Some(0));
        assert_eq!(f.num_records(), 4);
        let tas = f.var("tas").unwrap();
        assert_eq!(f.var_shape(tas), vec![4, 2, 3]);
        assert!(f.var("nope").is_none());
        assert_eq!(tas.data.to_f64_vec()[0], 250.0);
    }
}
