//! `tf.train.Example` messages on the protobuf wire format.
//!
//! The DIII-D-style fusion pipeline shards windowed diagnostic features as
//! TFRecords of `Example` protos. The message schema (from TensorFlow's
//! `feature.proto` / `example.proto`):
//!
//! ```text
//! message BytesList { repeated bytes value = 1; }
//! message FloatList { repeated float value = 1 [packed = true]; }
//! message Int64List { repeated int64 value = 1 [packed = true]; }
//! message Feature {
//!   oneof kind { BytesList bytes_list = 1;
//!                FloatList float_list = 2;
//!                Int64List int64_list = 3; }
//! }
//! message Features { map<string, Feature> feature = 1; }
//! message Example  { Features features = 1; }
//! ```
//!
//! A protobuf `map<k,v>` is encoded as a repeated sub-message with key as
//! field 1 and value as field 2.

use crate::protowire::{
    decode_fields, decode_packed_floats, decode_packed_int64, write_bytes_field,
    write_packed_floats, write_packed_int64, FieldValue,
};
use crate::{malformed, FormatError};
use std::collections::BTreeMap;

/// One feature value in an `Example`.
#[derive(Debug, Clone, PartialEq)]
pub enum Feature {
    /// `BytesList`.
    Bytes(Vec<Vec<u8>>),
    /// `FloatList` (f32 — TensorFlow's float features are single precision).
    Floats(Vec<f32>),
    /// `Int64List`.
    Ints(Vec<i64>),
}

/// A `tf.train.Example`: named features. `BTreeMap` gives deterministic
/// serialization so content hashes of shards are reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Example {
    /// Feature map.
    pub features: BTreeMap<String, Feature>,
}

impl Example {
    /// Empty example.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a float-list feature.
    pub fn with_floats(mut self, name: &str, values: Vec<f32>) -> Self {
        self.features.insert(name.into(), Feature::Floats(values));
        self
    }

    /// Insert an int64-list feature.
    pub fn with_ints(mut self, name: &str, values: Vec<i64>) -> Self {
        self.features.insert(name.into(), Feature::Ints(values));
        self
    }

    /// Insert a bytes-list feature.
    pub fn with_bytes(mut self, name: &str, values: Vec<Vec<u8>>) -> Self {
        self.features.insert(name.into(), Feature::Bytes(values));
        self
    }

    /// Serialize to protobuf wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut features_msg = Vec::new();
        for (name, feature) in &self.features {
            // Feature message.
            let mut fmsg = Vec::new();
            match feature {
                Feature::Bytes(items) => {
                    let mut list = Vec::new();
                    for item in items {
                        write_bytes_field(&mut list, 1, item);
                    }
                    write_bytes_field(&mut fmsg, 1, &list);
                }
                Feature::Floats(items) => {
                    let mut list = Vec::new();
                    write_packed_floats(&mut list, 1, items);
                    write_bytes_field(&mut fmsg, 2, &list);
                }
                Feature::Ints(items) => {
                    let mut list = Vec::new();
                    write_packed_int64(&mut list, 1, items);
                    write_bytes_field(&mut fmsg, 3, &list);
                }
            }
            // Map entry: key = field 1, value = field 2.
            let mut entry = Vec::new();
            write_bytes_field(&mut entry, 1, name.as_bytes());
            write_bytes_field(&mut entry, 2, &fmsg);
            write_bytes_field(&mut features_msg, 1, &entry);
        }
        let mut out = Vec::new();
        write_bytes_field(&mut out, 1, &features_msg);
        out
    }

    /// Parse from protobuf wire bytes.
    pub fn decode(data: &[u8]) -> Result<Example, FormatError> {
        let mut example = Example::new();
        for (field, value) in decode_fields(data)? {
            if field != 1 {
                continue; // unknown fields skipped, per proto3 semantics
            }
            let FieldValue::Bytes(features_msg) = value else {
                return Err(malformed("tf.Example", "features not length-delimited"));
            };
            for (f2, v2) in decode_fields(features_msg)? {
                if f2 != 1 {
                    continue;
                }
                let FieldValue::Bytes(entry) = v2 else {
                    return Err(malformed("tf.Example", "map entry not length-delimited"));
                };
                let mut name: Option<String> = None;
                let mut feature: Option<Feature> = None;
                for (f3, v3) in decode_fields(entry)? {
                    match (f3, v3) {
                        (1, FieldValue::Bytes(k)) => {
                            name = Some(
                                std::str::from_utf8(k)
                                    .map_err(|_| malformed("tf.Example", "non-UTF-8 key"))?
                                    .to_string(),
                            );
                        }
                        (2, FieldValue::Bytes(fmsg)) => {
                            feature = Some(decode_feature(fmsg)?);
                        }
                        _ => {}
                    }
                }
                let name = name.ok_or_else(|| malformed("tf.Example", "map entry missing key"))?;
                let feature =
                    feature.ok_or_else(|| malformed("tf.Example", "map entry missing value"))?;
                example.features.insert(name, feature);
            }
        }
        Ok(example)
    }

    /// Access a float feature.
    pub fn floats(&self, name: &str) -> Option<&[f32]> {
        match self.features.get(name) {
            Some(Feature::Floats(v)) => Some(v),
            _ => None,
        }
    }

    /// Access an int64 feature.
    pub fn ints(&self, name: &str) -> Option<&[i64]> {
        match self.features.get(name) {
            Some(Feature::Ints(v)) => Some(v),
            _ => None,
        }
    }

    /// Access a bytes feature.
    pub fn bytes(&self, name: &str) -> Option<&[Vec<u8>]> {
        match self.features.get(name) {
            Some(Feature::Bytes(v)) => Some(v),
            _ => None,
        }
    }
}

fn decode_feature(data: &[u8]) -> Result<Feature, FormatError> {
    for (field, value) in decode_fields(data)? {
        let FieldValue::Bytes(list) = value else {
            continue;
        };
        match field {
            1 => {
                // BytesList.
                let mut items = Vec::new();
                for (f, v) in decode_fields(list)? {
                    if f == 1 {
                        if let FieldValue::Bytes(b) = v {
                            items.push(b.to_vec());
                        }
                    }
                }
                return Ok(Feature::Bytes(items));
            }
            2 => {
                // FloatList: packed (field 1, wire 2) or unpacked (fixed32).
                let mut items = Vec::new();
                for (f, v) in decode_fields(list)? {
                    if f != 1 {
                        continue;
                    }
                    match v {
                        FieldValue::Bytes(b) => items.extend(decode_packed_floats(b)?),
                        FieldValue::Fixed32(raw) => {
                            items.push(f32::from_le_bytes(raw.to_le_bytes()))
                        }
                        _ => return Err(malformed("tf.Example", "bad float list")),
                    }
                }
                return Ok(Feature::Floats(items));
            }
            3 => {
                // Int64List: packed or unpacked varints.
                let mut items = Vec::new();
                for (f, v) in decode_fields(list)? {
                    if f != 1 {
                        continue;
                    }
                    match v {
                        FieldValue::Bytes(b) => items.extend(decode_packed_int64(b)?),
                        FieldValue::Varint(x) => items.push(x as i64),
                        _ => return Err(malformed("tf.Example", "bad int64 list")),
                    }
                }
                return Ok(Feature::Ints(items));
            }
            _ => {}
        }
    }
    Err(malformed("tf.Example", "feature with no kind"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_features() {
        let ex = Example::new()
            .with_floats("signal", vec![1.0, -2.5, 3.25])
            .with_ints("label", vec![1])
            .with_ints("shot_id", vec![176_000])
            .with_bytes("machine", vec![b"d3d".to_vec()]);
        let bytes = ex.encode();
        let back = Example::decode(&bytes).unwrap();
        assert_eq!(back, ex);
        assert_eq!(back.floats("signal").unwrap(), &[1.0, -2.5, 3.25]);
        assert_eq!(back.ints("label").unwrap(), &[1]);
        assert_eq!(back.bytes("machine").unwrap()[0], b"d3d");
        assert_eq!(back.floats("label"), None); // wrong-kind access
        assert_eq!(back.floats("missing"), None);
    }

    #[test]
    fn empty_example() {
        let ex = Example::new();
        let back = Example::decode(&ex.encode()).unwrap();
        assert!(back.features.is_empty());
    }

    #[test]
    fn empty_lists_round_trip() {
        let ex = Example::new()
            .with_floats("f", vec![])
            .with_ints("i", vec![])
            .with_bytes("b", vec![]);
        let back = Example::decode(&ex.encode()).unwrap();
        assert_eq!(back, ex);
    }

    #[test]
    fn deterministic_encoding() {
        let a = Example::new()
            .with_floats("zz", vec![1.0])
            .with_ints("aa", vec![2]);
        let b = Example::new()
            .with_ints("aa", vec![2])
            .with_floats("zz", vec![1.0]);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn negative_ints_survive() {
        let ex = Example::new().with_ints("deltas", vec![-1, -1000, i64::MIN]);
        let back = Example::decode(&ex.encode()).unwrap();
        assert_eq!(back.ints("deltas").unwrap(), &[-1, -1000, i64::MIN]);
    }

    #[test]
    fn unpacked_floats_accepted() {
        // Some writers emit FloatList values unpacked (one fixed32 per
        // element); the decoder must accept both.
        use crate::protowire::{write_bytes_field, write_key, WireType};
        let mut float_list = Vec::new();
        write_key(&mut float_list, 1, WireType::Fixed32);
        float_list.extend_from_slice(&1.5f32.to_le_bytes());
        write_key(&mut float_list, 1, WireType::Fixed32);
        float_list.extend_from_slice(&2.5f32.to_le_bytes());
        let mut fmsg = Vec::new();
        write_bytes_field(&mut fmsg, 2, &float_list);
        let mut entry = Vec::new();
        write_bytes_field(&mut entry, 1, b"x");
        write_bytes_field(&mut entry, 2, &fmsg);
        let mut features = Vec::new();
        write_bytes_field(&mut features, 1, &entry);
        let mut msg = Vec::new();
        write_bytes_field(&mut msg, 1, &features);
        let ex = Example::decode(&msg).unwrap();
        assert_eq!(ex.floats("x").unwrap(), &[1.5, 2.5]);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Example::decode(&[0x12, 0xFF]).is_err());
    }
}
