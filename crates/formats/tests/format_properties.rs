//! Property tests on the binary container formats: arbitrary-content
//! round-trips and no-panic guarantees on malformed input.

use drai_formats::bp::{BpReader, BpVar, BpWriter, ProcessGroup};
use drai_formats::example::{Example, Feature};
use drai_formats::fasta::{parse_fasta, write_fasta, FastaRecord};
use drai_formats::grib::{decode_message, encode_message, GribMessage, Packing};
use drai_formats::h5lite::{Dataset, H5File};
use drai_formats::netcdf::NcFile;
use drai_formats::xyz::{parse_xyz, write_xyz, Atom, Frame};
use drai_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #[test]
    fn grib_round_trip_within_tolerance(
        nlat in 1u32..12, nlon in 1u32..12, bits in 8u32..24,
        seed in any::<u64>()) {
        let n = (nlat * nlon) as usize;
        let mut state = seed | 1;
        let values: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 200.0 + 150.0
        }).collect();
        let span = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        let msg = GribMessage {
            parameter: "v".into(),
            nlat, nlon, time_hours: 0,
            values: values.clone(),
        };
        let packing = Packing { bits };
        let bytes = encode_message(&msg, packing).unwrap();
        let (back, used) = decode_message(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        let tol = drai_formats::grib::quantization_error(span, packing) * 1.01 + 1e-12;
        for (a, b) in back.values.iter().zip(&values) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} tol {}", a, b, tol);
        }
    }

    #[test]
    fn grib_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&data);
    }

    #[test]
    fn h5lite_tensor_round_trip(
        rows in 0usize..20, cols in 1usize..8, chunk in 1usize..10,
        values_seed in any::<u64>()) {
        let mut state = values_seed | 1;
        let data: Vec<f64> = (0..rows * cols).map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            f64::from_bits((state >> 12) | 0x3FF0_0000_0000_0000) - 1.5
        }).collect();
        let t = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let mut f = H5File::new();
        f.put_dataset("/g/x", Dataset::from_tensor(&t, chunk)).unwrap();
        let back = H5File::from_bytes(&f.to_bytes()).unwrap();
        let rt: Tensor<f64> = back.tensor("/g/x").unwrap();
        prop_assert_eq!(rt.to_le_bytes(), t.to_le_bytes());
    }

    #[test]
    fn h5lite_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = H5File::from_bytes(&data);
    }

    #[test]
    fn bp_round_trip(groups in 0usize..6, vars in 1usize..4, n in 1usize..32) {
        let mut w = BpWriter::new();
        let mut expect = Vec::new();
        for g in 0..groups {
            let pg = ProcessGroup {
                name: format!("g{g}"),
                step: g as u64,
                vars: (0..vars)
                    .map(|v| {
                        let t = Tensor::from_fn(&[n], |k| (g * 31 + v * 7 + k) as i64);
                        BpVar::from_tensor(&format!("v{v}"), &t)
                    })
                    .collect(),
            };
            w.append(&pg);
            expect.push(pg);
        }
        let bytes = w.finish();
        let r = BpReader::open(&bytes).unwrap();
        prop_assert_eq!(r.read_all().unwrap(), expect);
    }

    #[test]
    fn bp_open_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = BpReader::open(&data);
    }

    #[test]
    fn netcdf_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = NcFile::from_bytes(&data);
    }

    #[test]
    fn example_round_trip_arbitrary_features(
        floats in proptest::collection::vec(any::<f32>(), 0..32),
        ints in proptest::collection::vec(any::<i64>(), 0..32),
        blob in proptest::collection::vec(any::<u8>(), 0..64)) {
        let ex = Example::new()
            .with_floats("f", floats.clone())
            .with_ints("i", ints.clone())
            .with_bytes("b", vec![blob.clone()]);
        let back = Example::decode(&ex.encode()).unwrap();
        // Floats compared bitwise (NaN-safe).
        match (&back.features["f"], &Feature::Floats(floats)) {
            (Feature::Floats(a), Feature::Floats(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => prop_assert!(false, "float feature lost"),
        }
        prop_assert_eq!(back.ints("i").unwrap(), &ints[..]);
        prop_assert_eq!(&back.bytes("b").unwrap()[0], &blob);
    }

    #[test]
    fn fasta_round_trip(seqs in proptest::collection::vec("[ACGTN]{0,80}", 1..6),
                        width in 1usize..30) {
        let records: Vec<FastaRecord> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| FastaRecord {
                header: format!("seq{i}"),
                sequence: s.clone(),
            })
            .collect();
        let text = write_fasta(&records, width);
        prop_assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    #[test]
    fn xyz_round_trip(natoms in 1usize..10, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        };
        let frame = Frame {
            atoms: (0..natoms)
                .map(|i| Atom {
                    element: ["H", "C", "O", "Si"][i % 4].to_string(),
                    position: [rand(), rand(), rand()],
                    force: Some([rand(), rand(), rand()]),
                })
                .collect(),
            properties: [("energy".to_string(), "-1.25".to_string())]
                .into_iter()
                .collect(),
        };
        let text = write_xyz(std::slice::from_ref(&frame));
        let back = parse_xyz(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].atoms.len(), natoms);
        for (a, b) in back[0].atoms.iter().zip(&frame.atoms) {
            prop_assert_eq!(&a.element, &b.element);
            for c in 0..3 {
                prop_assert!((a.position[c] - b.position[c]).abs() < 1e-7);
                prop_assert!((a.force.unwrap()[c] - b.force.unwrap()[c]).abs() < 1e-7);
            }
        }
    }
}
