//! # drai-lint
//!
//! Workspace-native static analysis for the DRAI codebase: a
//! dependency-free (std-only) rule engine over a lightweight Rust lexer
//! that checks project-specific invariants no generic lint can express.
//! It runs offline — matching the vendored-shim philosophy — and gates
//! CI: `drai-lint` exits nonzero on any finding.
//!
//! ## Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-in-lib` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` (or indexing-adjacent `assert!`) in library code of `drai-core`, `drai-io`, `drai-formats`, `drai-transform` |
//! | `telemetry-names` | metric-name literals match the dotted grammar and the `METRIC_FAMILIES` registry in `drai-telemetry`, and every registered family is emitted somewhere |
//! | `unsafe-audit` | every `unsafe` token carries an adjacent `// SAFETY:` comment |
//! | `shim-parity` | shim crates import only `std` (no cross-shim or workspace deps), keeping them deletable |
//! | `error-context` | `IoError` construction in `drai-io` carries a path/shard/record context |
//! | `no-wallclock` | `Instant::now`/`SystemTime::now` only in `drai-telemetry` and the retry/cache clock seams (deterministic replay) |
//! | `lock-order` | the workspace-wide lock-acquisition-order graph is acyclic (no ABBA deadlocks, no same-lock reacquisition) |
//! | `lock-across-blocking` | no live lock guard spans a blocking channel `send`/`recv`, `thread::join`, or backoff sleep |
//! | `layering` | crate dependencies (manifest and `use`-level) point strictly down the architectural layer stack |
//! | `gauge-balance` | every gauge increment has a matching decrement, `set`, or RAII scope in the same crate |
//!
//! The first six are single-file lexical rules (v1); the last four are
//! v2 concurrency/architecture rules built on the structural model in
//! [`model`] (lexer → model → rules).
//!
//! ## Suppressions
//!
//! A finding can be silenced with a comment on the same line or the
//! line above — the reason is mandatory:
//!
//! ```text
//! // drai-lint: allow(no-panic-in-lib) reason="length proven by the split above"
//! ```
//!
//! Malformed or unused suppressions are themselves findings (rule
//! `suppression`), so the allow-list can only shrink through honest
//! means.

#![forbid(unsafe_code)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod model;
pub mod rules;
pub mod suppress;

use lexer::LexFile;
use suppress::Suppression;

/// What kind of code a file holds, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under some `src/` (excluding `src/bin/`).
    Lib,
    /// Binary code under a `src/bin/`.
    Bin,
    /// Integration tests under a `tests/` directory.
    Tests,
    /// Example programs under an `examples/` directory.
    Examples,
    /// Criterion benchmarks under a `benches/` directory.
    Bench,
    /// Vendored shim code under `shims/`.
    Shim,
}

/// One lexed source file plus its workspace-level classification.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (`core`, `io`, ..., `drai` for the
    /// root package, shim name for shims).
    pub crate_name: String,
    /// Coarse classification driving rule scoping.
    pub class: FileClass,
    /// Lexed contents.
    pub lex: LexFile,
}

/// One metric family parsed from the `METRIC_FAMILIES` registry.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Dotted pattern; `*` segments match one or more name segments.
    pub pattern: String,
    /// Line of the literal inside the telemetry crate.
    pub line: u32,
}

/// Everything the rules need to see at once.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All lexed `.rs` files.
    pub files: Vec<SourceFile>,
    /// Parsed metric-family registry (empty if the telemetry crate is
    /// absent, in which case `telemetry-names` reports that instead).
    pub metric_families: Vec<MetricFamily>,
    /// `(relative path, contents)` of every `shims/*/Cargo.toml`.
    pub shim_manifests: Vec<(String, String)>,
    /// `(relative path, contents)` of the root and every
    /// `crates/*/Cargo.toml` (for the `layering` rule).
    pub crate_manifests: Vec<(String, String)>,
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A finding silenced by a suppression comment, kept for reporting.
#[derive(Debug, Clone)]
pub struct SuppressedFinding {
    /// The original finding.
    pub finding: Finding,
    /// The mandatory reason from the suppression comment.
    pub reason: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Active findings (exit-nonzero material).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid suppression comment.
    pub suppressed: Vec<SuppressedFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no active findings remain.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                json_escape(s.finding.rule),
                json_escape(&s.finding.file),
                s.finding.line,
                json_escape(&s.reason)
            ));
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"suppressed\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories scanned under the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "src", "shims", "tests", "examples"];

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> (FileClass, String) {
    let crate_name = if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else if let Some(rest) = rel.strip_prefix("shims/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else {
        "drai".to_string()
    };
    let class = if rel.starts_with("shims/") {
        FileClass::Shim
    } else if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileClass::Tests
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileClass::Examples
    } else if rel.starts_with("benches/") || rel.contains("/benches/") {
        FileClass::Bench
    } else if rel.contains("src/bin/") {
        FileClass::Bin
    } else {
        FileClass::Lib
    };
    (class, crate_name)
}

/// Build a [`SourceFile`] from in-memory contents (used by rule
/// fixtures and by [`lint_workspace`]).
pub fn source_file(rel: &str, contents: &str) -> SourceFile {
    let (class, crate_name) = classify(rel);
    SourceFile {
        rel: rel.to_string(),
        crate_name,
        class,
        lex: lexer::lex(contents),
    }
}

/// Recursively collect `.rs` files under `dir`, skipping `target`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load and lex every source file reachable from `root`.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(&d, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let contents = fs::read_to_string(path)?;
        files.push(source_file(&rel, &contents));
    }

    let metric_families = files
        .iter()
        .find(|f| f.rel == rules::telemetry_names::REGISTRY_FILE)
        .map(|f| rules::telemetry_names::parse_families(&f.lex))
        .unwrap_or_default();

    let mut shim_manifests = Vec::new();
    let shims = root.join("shims");
    if shims.is_dir() {
        for entry in fs::read_dir(&shims)? {
            let entry = entry?;
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                let rel = manifest
                    .strip_prefix(root)
                    .unwrap_or(&manifest)
                    .to_string_lossy()
                    .replace('\\', "/");
                shim_manifests.push((rel, fs::read_to_string(&manifest)?));
            }
        }
    }
    shim_manifests.sort();

    let mut crate_manifests = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        crate_manifests.push((
            "Cargo.toml".to_string(),
            fs::read_to_string(&root_manifest)?,
        ));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                let rel = manifest
                    .strip_prefix(root)
                    .unwrap_or(&manifest)
                    .to_string_lossy()
                    .replace('\\', "/");
                crate_manifests.push((rel, fs::read_to_string(&manifest)?));
            }
        }
    }
    crate_manifests.sort();

    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        metric_families,
        shim_manifests,
        crate_manifests,
    })
}

/// Run every rule over a loaded workspace and apply suppressions.
pub fn lint(ws: &Workspace) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for file in &ws.files {
        rules::no_panic::check_file(file, &mut raw);
        rules::telemetry_names::check_file(file, ws, &mut raw);
        rules::unsafe_audit::check_file(file, &mut raw);
        rules::shim_parity::check_file(file, &mut raw);
        rules::error_context::check_file(file, &mut raw);
        rules::no_wallclock::check_file(file, &mut raw);
        rules::lock_blocking::check_file(file, &mut raw);
    }
    rules::telemetry_names::check_workspace(ws, &mut raw);
    rules::shim_parity::check_manifests(ws, &mut raw);
    rules::lock_order::check_workspace(ws, &mut raw);
    rules::layering::check_workspace(ws, &mut raw);
    rules::gauge_balance::check_workspace(ws, &mut raw);

    // Apply suppressions per file.
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for file in &ws.files {
        let (mut sups, malformed) = suppress::collect(&file.lex);
        for m in malformed {
            findings.push(Finding {
                rule: suppress::RULE,
                file: file.rel.clone(),
                line: m.line,
                message: m.message,
            });
        }
        let (mut file_findings, rest): (Vec<Finding>, Vec<Finding>) =
            raw.drain(..).partition(|f| f.file == file.rel);
        raw = rest;
        file_findings.sort_by_key(|f| f.line);
        for f in file_findings {
            match sups.iter_mut().find(|s| s.covers(f.rule, f.line)) {
                Some(s) => {
                    s.used = true;
                    suppressed.push(SuppressedFinding {
                        reason: s.reason.clone(),
                        finding: f,
                    });
                }
                None => findings.push(f),
            }
        }
        for s in sups.iter().filter(|s| !s.used) {
            findings.push(unused_suppression(file, s));
        }
    }
    // Findings for files outside the scan set (shouldn't happen, but
    // never drop a finding silently).
    findings.append(&mut raw);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Report {
        findings,
        suppressed,
        files_scanned: ws.files.len(),
    }
}

fn unused_suppression(file: &SourceFile, s: &Suppression) -> Finding {
    Finding {
        rule: suppress::RULE,
        file: file.rel.clone(),
        line: s.line,
        message: format!(
            "unused suppression for rule `{}` — nothing to allow here; delete it",
            s.rule
        ),
    }
}

/// Load `root` and lint it in one call.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint(&load_workspace(root)?))
}

/// Names of all rules, for `--list-rules` and docs.
pub const RULE_NAMES: &[&str] = &[
    rules::no_panic::RULE,
    rules::telemetry_names::RULE,
    rules::unsafe_audit::RULE,
    rules::shim_parity::RULE,
    rules::error_context::RULE,
    rules::no_wallclock::RULE,
    rules::lock_order::RULE,
    rules::lock_blocking::RULE,
    rules::layering::RULE,
    rules::gauge_balance::RULE,
    suppress::RULE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/io/src/shard.rs"),
            (FileClass::Lib, "io".to_string())
        );
        assert_eq!(
            classify("crates/bench/src/bin/drai-bench.rs"),
            (FileClass::Bin, "bench".to_string())
        );
        assert_eq!(
            classify("crates/lint/tests/workspace_clean.rs"),
            (FileClass::Tests, "lint".to_string())
        );
        assert_eq!(
            classify("shims/rand/src/lib.rs"),
            (FileClass::Shim, "rand".to_string())
        );
        assert_eq!(
            classify("crates/bench/benches/pipeline.rs"),
            (FileClass::Bench, "bench".to_string())
        );
        assert_eq!(
            classify("benches/top_level.rs"),
            (FileClass::Bench, "drai".to_string())
        );
        assert_eq!(
            classify("tests/end_to_end.rs"),
            (FileClass::Tests, "drai".to_string())
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            (FileClass::Examples, "drai".to_string())
        );
        assert_eq!(classify("src/lib.rs"), (FileClass::Lib, "drai".to_string()));
        assert_eq!(
            classify("src/bin/drai.rs"),
            (FileClass::Bin, "drai".to_string())
        );
    }

    #[test]
    fn json_report_escapes() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-panic-in-lib",
                file: "a\\b.rs".into(),
                line: 3,
                message: "said \"no\"".into(),
            }],
            suppressed: vec![],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("said \\\"no\\\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }
}
