//! A lightweight Rust lexer, sufficient for rule matching.
//!
//! This is not a full Rust tokenizer — it only needs to be *sound* for
//! the lint rules built on top of it: identifiers, punctuation, and
//! literals are produced as tokens, while comments (line, doc, and
//! nested block comments), string literals (including raw strings with
//! any number of `#` guards and byte/C-string prefixes), char literals,
//! and lifetimes are consumed correctly so a rule never matches text
//! inside a literal or a comment. Every token carries its 1-based line.
//!
//! After lexing, [`lex`] marks `#[cfg(test)]` / `#[test]` item regions
//! so rules can exempt test code without a full parse.

/// Token payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (plain, byte, C, or raw); `value` is the
    /// uninterpreted body between the quotes.
    Str {
        /// Literal body (escapes not processed).
        value: String,
        /// True for `r"..."` / `r#"..."#` forms.
        raw: bool,
    },
    /// Char or byte-char literal (body not retained).
    CharLit,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (body not retained).
    Num,
    /// Single punctuation character.
    P(char),
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Payload.
    pub kind: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block), retained for SAFETY/suppression rules.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Raw comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (== `line` for `//`).
    pub end_line: u32,
}

/// A lexed source file: tokens, comments, and per-token test-region flags.
#[derive(Debug, Default)]
pub struct LexFile {
    /// All code tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
    /// `in_test[i]` is true when `tokens[i]` sits inside a
    /// `#[cfg(test)]` or `#[test]` item.
    pub in_test: Vec<bool>,
}

impl LexFile {
    /// The identifier at token index `i`, if any.
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// True when token `i` is the punctuation `c`.
    pub fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.kind), Some(Tok::P(p)) if *p == c)
    }

    /// True when token `i` exists and lies inside a test region.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Index of the `cc` matching the `oc` at token `open`, or `None`
    /// when `open` is not `oc` or the file ends first.
    pub fn match_delim(&self, open: usize, oc: char, cc: char) -> Option<usize> {
        if !self.punct_at(open, oc) {
            return None;
        }
        let end = match_delim(&self.tokens, open, oc, cc);
        self.punct_at(end, cc).then_some(end)
    }
}

/// Lex `src` into tokens and comments and mark test regions.
pub fn lex(src: &str) -> LexFile {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                end_line: line,
            });
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1u32;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push(Comment {
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: start_line,
                end_line: line,
            });
        } else if c == '"' {
            let start_line = line;
            let (value, ni, nl) = scan_plain_string(&chars, i, line);
            tokens.push(Token {
                kind: Tok::Str { value, raw: false },
                line: start_line,
            });
            i = ni;
            line = nl;
        } else if c == '\'' {
            let (tok, ni, nl) = scan_quote(&chars, i, line);
            tokens.push(Token { kind: tok, line });
            i = ni;
            line = nl;
        } else if c.is_ascii_digit() {
            let start_line = line;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                kind: Tok::Num,
                line: start_line,
            });
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let raw_prefix = matches!(ident.as_str(), "r" | "br" | "rb" | "cr" | "rc");
            let plain_prefix = matches!(ident.as_str(), "b" | "c");
            if raw_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                let start_line = line;
                let (value, ni, nl) = scan_raw_string(&chars, i, line);
                tokens.push(Token {
                    kind: Tok::Str { value, raw: true },
                    line: start_line,
                });
                i = ni;
                line = nl;
            } else if plain_prefix && chars.get(i) == Some(&'"') {
                let start_line = line;
                let (value, ni, nl) = scan_plain_string(&chars, i, line);
                tokens.push(Token {
                    kind: Tok::Str { value, raw: false },
                    line: start_line,
                });
                i = ni;
                line = nl;
            } else if ident == "b" && chars.get(i) == Some(&'\'') {
                let (_, ni, nl) = scan_quote(&chars, i, line);
                tokens.push(Token {
                    kind: Tok::CharLit,
                    line,
                });
                i = ni;
                line = nl;
            } else {
                tokens.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
            }
        } else {
            tokens.push(Token {
                kind: Tok::P(c),
                line,
            });
            i += 1;
        }
    }

    let in_test = mark_test_regions(&tokens);
    LexFile {
        tokens,
        comments,
        in_test,
    }
}

/// Scan a `"..."` string starting at the opening quote; returns
/// `(body, index_after, line_after)`.
fn scan_plain_string(chars: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let mut i = start + 1;
    let body_start = i;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Skip the escaped character; count a line continuation.
                if chars.get(i + 1) == Some(&'\n') {
                    line += 1;
                }
                i = (i + 2).min(chars.len());
            }
            '"' => {
                let body: String = chars[body_start..i].iter().collect();
                return (body, i + 1, line);
            }
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (chars[body_start..].iter().collect(), i, line)
}

/// Scan a raw string starting at the first `#` or `"` after the `r`
/// prefix; returns `(body, index_after, line_after)`.
fn scan_raw_string(chars: &[char], start: usize, mut line: u32) -> (String, usize, u32) {
    let mut i = start;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        // Not actually a raw string (e.g. `r#ident`); treat as empty.
        return (String::new(), i, line);
    }
    i += 1;
    let body_start = i;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                let body: String = chars[body_start..i].iter().collect();
                return (body, i + 1 + hashes, line);
            }
        }
        if chars[i] == '\n' {
            line += 1;
        }
        i += 1;
    }
    (chars[body_start..].iter().collect(), i, line)
}

/// Scan from a `'`: either a lifetime or a char literal. Returns
/// `(token, index_after, line_after)`.
fn scan_quote(chars: &[char], start: usize, mut line: u32) -> (Tok, usize, u32) {
    let next = chars.get(start + 1).copied();
    match next {
        Some('\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut i = start + 2;
            if i < chars.len() {
                i += 1; // the escaped character itself
            }
            while i < chars.len() && chars[i] != '\'' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            (Tok::CharLit, (i + 1).min(chars.len()), line)
        }
        Some(c) if c.is_alphanumeric() || c == '_' => {
            if chars.get(start + 2) == Some(&'\'') {
                // 'a' — a one-character literal.
                (Tok::CharLit, start + 3, line)
            } else {
                // 'ident — a lifetime; consume the identifier.
                let mut i = start + 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                (Tok::Lifetime, i, line)
            }
        }
        Some(c) => {
            if chars.get(start + 2) == Some(&'\'') {
                // Punctuation char literal like '['.
                if c == '\n' {
                    line += 1;
                }
                (Tok::CharLit, start + 3, line)
            } else {
                // Stray quote; emit as punctuation to keep progressing.
                (Tok::P('\''), start + 1, line)
            }
        }
        None => (Tok::P('\''), start + 1, line),
    }
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` items.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_p(tokens, i, '#') && is_p(tokens, i + 1, '[')) {
            i += 1;
            continue;
        }
        let attr_end = match_bracket(tokens, i + 1);
        if !attr_is_test(tokens, i + 1, attr_end) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while is_p(tokens, j, '#') && is_p(tokens, j + 1, '[') {
            j = match_bracket(tokens, j + 1) + 1;
        }
        // The item body is the first `{ ... }` before a `;`.
        let mut k = j;
        let mut marked_to = attr_end;
        while k < tokens.len() {
            match &tokens[k].kind {
                Tok::P('{') => {
                    marked_to = match_brace(tokens, k);
                    break;
                }
                Tok::P(';') => {
                    marked_to = k;
                    break;
                }
                _ => k += 1,
            }
        }
        let end = marked_to.min(tokens.len().saturating_sub(1));
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// True when an attribute spanning `(open, close)` token indices marks
/// test code: `#[test]`, or `#[cfg(test)]`-style without a `not`.
fn attr_is_test(tokens: &[Token], open: usize, close: usize) -> bool {
    let mut idents =
        (open..=close.min(tokens.len().saturating_sub(1))).filter_map(|i| match &tokens[i].kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        });
    match idents.next() {
        Some("test") => true,
        Some("cfg") => {
            let rest: Vec<&str> = idents.collect();
            rest.contains(&"test") && !rest.contains(&"not")
        }
        _ => false,
    }
}

fn is_p(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::P(p)) if *p == c)
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    match_delim(tokens, open, '[', ']')
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    match_delim(tokens, open, '{', '}')
}

fn match_delim(tokens: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if let Tok::P(p) = &tokens[i].kind {
            if *p == oc {
                depth += 1;
            } else if *p == cc {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // The words inside literals must not become identifiers.
        let got = idents(r#"let x = "unwrap panic"; call(x);"#);
        assert_eq!(got, vec!["let", "x", "call", "x"]);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r##\"has \"# inside and unwrap()\"##; after();";
        let got = idents(src);
        assert_eq!(got, vec!["let", "s", "after"]);
        let f = lex(src);
        let bodies: Vec<String> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str { value, raw: true } => Some(value.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(bodies, vec!["has \"# inside and unwrap()"]);
    }

    #[test]
    fn nested_block_comments_skipped() {
        let src = "before(); /* outer /* inner unwrap() */ still comment */ after();";
        assert_eq!(idents(src), vec!["before", "after"]);
        let f = lex(src);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a();\nb();\n\nc();";
        let f = lex(src);
        let lines: Vec<(String, u32)> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]
        );
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let b = b'z'; }";
        let f = lex(src);
        let lifetimes = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::Lifetime))
            .count();
        let chars = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::CharLit))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn lib2() {}";
        let f = lex(src);
        // Find both `unwrap` tokens and check flags.
        let flags: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, Tok::Ident(s) if s == "unwrap"))
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(flags, vec![false, true]);
        // lib2 after the module is back outside.
        let lib2 = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "lib2"))
            .expect("lib2 token");
        assert!(!f.is_test_token(lib2));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }";
        let f = lex(src);
        let unwrap = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "unwrap"))
            .expect("unwrap token");
        assert!(!f.is_test_token(unwrap));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn real() { b.unwrap(); }";
        let f = lex(src);
        let flags: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.kind, Tok::Ident(s) if s == "unwrap"))
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    // ---- char-literal vs lifetime ambiguity regressions ----
    //
    // The structural model (`crate::model`) brace-matches bodies and
    // walks generic signatures, so a `'{'` misread as a lifetime plus
    // a stray `{`, or an `'a>` bound misread as a char literal, would
    // silently corrupt every downstream concurrency rule.

    fn count(src: &str, pred: fn(&Tok) -> bool) -> usize {
        lex(src).tokens.iter().filter(|t| pred(&t.kind)).count()
    }

    fn lifetimes(src: &str) -> usize {
        count(src, |k| matches!(k, Tok::Lifetime))
    }

    fn char_lits(src: &str) -> usize {
        count(src, |k| matches!(k, Tok::CharLit))
    }

    fn brace_delta(src: &str) -> i64 {
        count(src, |k| matches!(k, Tok::P('{'))) as i64
            - count(src, |k| matches!(k, Tok::P('}'))) as i64
    }

    #[test]
    fn lifetimes_in_generic_bounds_are_not_char_literals() {
        let src = "fn f<'a, 'b: 'a>(x: &'a str, y: &'b str) -> &'a str { x }";
        assert_eq!(lifetimes(src), 6);
        assert_eq!(char_lits(src), 0);
        assert_eq!(brace_delta(src), 0);
    }

    #[test]
    fn single_char_lifetime_before_close_angle() {
        // `'a>` — the closing angle must stay a separate punct token.
        let src = "struct S<'a>(&'a [u8]);\nimpl<'a> S<'a> { fn g(&self) {} }";
        assert_eq!(lifetimes(src), 4);
        assert_eq!(char_lits(src), 0);
        assert_eq!(brace_delta(src), 0);
    }

    #[test]
    fn byte_char_braces_do_not_unbalance_blocks() {
        let src = "fn f(b: u8) -> u8 { match b { b'{' => 1, b'}' => 2, b'[' => 3, _ => 0 } }";
        assert_eq!(char_lits(src), 3);
        assert_eq!(lifetimes(src), 0);
        assert_eq!(brace_delta(src), 0);
    }

    #[test]
    fn char_literal_braces_and_escapes() {
        let src = "let a = '{'; let b = '}'; let c = '\\''; let d = '\\\\'; let e = '\\u{7f}'; let f = '_';";
        assert_eq!(char_lits(src), 6);
        assert_eq!(lifetimes(src), 0);
        // Neither the quoted braces nor the `{7f}` escape payload may
        // leak punctuation tokens.
        assert_eq!(count(src, |k| matches!(k, Tok::P('{') | Tok::P('}'))), 0);
    }

    #[test]
    fn byte_char_ranges_in_match_arms() {
        let src = "fn d(c: u8) -> bool { matches!(c, b'a'..=b'z' | b'_' | b'0'..=b'9') }";
        assert_eq!(char_lits(src), 5);
        assert_eq!(lifetimes(src), 0);
        assert_eq!(brace_delta(src), 0);
    }

    #[test]
    fn loop_labels_and_anonymous_lifetimes() {
        let src = "fn f() -> Box<dyn Send + '_> { 'outer: loop { break 'outer; } }";
        assert_eq!(lifetimes(src), 3);
        assert_eq!(char_lits(src), 0);
        assert_eq!(brace_delta(src), 0);
    }

    #[test]
    fn lifetime_then_char_literal_adjacent() {
        // A lifetime and a char literal in one expression context.
        let src = "fn f<'a>(s: &'a str) -> bool { s.starts_with('a') && s.ends_with('\\'') }";
        assert_eq!(lifetimes(src), 2);
        assert_eq!(char_lits(src), 2);
        assert_eq!(brace_delta(src), 0);
    }
}
