//! `error-context`: `IoError` values constructed in `drai-io` library
//! code must carry enough context to act on — a path, shard, blob or
//! record identity — not a bare "read failed". The heuristic: the
//! string argument to `IoError::Format(...)` / `IoError::Codec(...)`
//! must either interpolate a value (`{...}` hole in a `format!`) or
//! mention a contextual noun (path, file, shard, record, manifest,
//! blob, name, offset, header). `ChecksumMismatch` is a struct variant
//! with a mandatory `context` field, so the type system already
//! enforces it there.

use crate::lexer::Tok;
use crate::{FileClass, Finding, SourceFile};

/// Rule id.
pub const RULE: &str = "error-context";

/// Variants whose message argument we inspect.
const CHECKED_VARIANTS: &[&str] = &["Format", "Codec"];

/// Words that count as identifying context in a fixed message.
const CONTEXT_WORDS: &[&str] = &[
    "path", "file", "shard", "record", "manifest", "blob", "name", "offset", "header",
];

fn in_scope(file: &SourceFile) -> bool {
    file.class == FileClass::Lib && file.crate_name == "io"
}

/// Scan one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    let lex = &file.lex;
    let toks = &lex.tokens;
    for i in 0..toks.len() {
        if lex.is_test_token(i) {
            continue;
        }
        if lex.ident_at(i) != Some("IoError") {
            continue;
        }
        // IoError :: Variant ( ... )
        if !(lex.punct_at(i + 1, ':') && lex.punct_at(i + 2, ':')) {
            continue;
        }
        let Some(variant) = lex.ident_at(i + 3) else {
            continue;
        };
        if !CHECKED_VARIANTS.contains(&variant) {
            continue;
        }
        if !lex.punct_at(i + 4, '(') {
            continue;
        }
        let line = toks[i].line;
        let end = lex.match_delim(i + 4, '(', ')').unwrap_or(toks.len());
        // Only judge constructions that carry a string literal; match
        // arms (`IoError::Format(msg) => ...`) and error-wrapping
        // conversions (`IoError::Codec(e)`) have no message to check.
        if has_str(lex, i + 5, end) && !args_have_context(lex, i + 5, end) {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line,
                message: format!(
                    "IoError::{variant} without path/shard context — say *which* input failed, not just how"
                ),
            });
        }
    }
}

/// True when any string literal appears in `[start, end)`.
fn has_str(lex: &crate::lexer::LexFile, start: usize, end: usize) -> bool {
    lex.tokens[start..end.min(lex.tokens.len())]
        .iter()
        .any(|t| matches!(t.kind, Tok::Str { .. }))
}

/// True when some string literal in `[start, end)` interpolates a value
/// or names a contextual noun.
fn args_have_context(lex: &crate::lexer::LexFile, start: usize, end: usize) -> bool {
    for tok in &lex.tokens[start..end.min(lex.tokens.len())] {
        let Tok::Str { value, .. } = &tok.kind else {
            continue;
        };
        // A format hole (but not an escaped `{{`) interpolates identity.
        let holes = value.replace("{{", "").replace("}}", "");
        if holes.contains('{') {
            return true;
        }
        let lower = value.to_lowercase();
        if CONTEXT_WORDS.iter().any(|w| lower.contains(w)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    #[test]
    fn bare_message_fires() {
        let src = r#"fn f() -> Result<(), IoError> { Err(IoError::Format("truncated".into())) }"#;
        let f = run("crates/io/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Format"));
    }

    #[test]
    fn interpolated_message_passes() {
        let src = r#"fn f(n: &str) -> Result<(), IoError> { Err(IoError::Format(format!("no such blob: {n}"))) }"#;
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn context_noun_passes() {
        let src =
            r#"fn f() -> Result<(), IoError> { Err(IoError::Format("empty blob name".into())) }"#;
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn escaped_braces_are_not_holes() {
        let src =
            r#"fn f() -> Result<(), IoError> { Err(IoError::Format(format!("bad {{}} token"))) }"#;
        assert_eq!(run("crates/io/src/x.rs", src).len(), 1);
    }

    #[test]
    fn match_arms_and_wrapping_conversions_pass() {
        let src = r#"
fn describe(e: &IoError) -> String {
    match e {
        IoError::Format(msg) => format!("format error: {msg}"),
        IoError::Codec(e) => e.to_string(),
        _ => String::new(),
    }
}
fn wrap(e: CodecError) -> IoError { IoError::Codec(e) }
"#;
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn codec_variant_checked_too() {
        let src = r#"fn f() -> Result<(), IoError> { Err(IoError::Codec("oops".into())) }"#;
        assert_eq!(run("crates/io/src/x.rs", src).len(), 1);
    }

    #[test]
    fn other_crates_and_tests_exempt() {
        let src = r#"fn f() -> Result<(), IoError> { Err(IoError::Format("truncated".into())) }"#;
        assert!(run("crates/formats/src/x.rs", src).is_empty());
        let in_test = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = IoError::Format("truncated".into()); }
}
"#;
        assert!(run("crates/io/src/x.rs", in_test).is_empty());
    }
}
