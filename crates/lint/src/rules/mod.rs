//! The rule set. Each rule is a module with a `RULE` id and a
//! `check_file` entry point; cross-file rules add a workspace pass.

pub mod error_context;
pub mod gauge_balance;
pub mod layering;
pub mod lock_blocking;
pub mod lock_order;
pub mod no_panic;
pub mod no_wallclock;
pub mod shim_parity;
pub mod telemetry_names;
pub mod unsafe_audit;
