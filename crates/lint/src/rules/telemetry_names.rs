//! `telemetry-names`: the metric namespace is a public interface —
//! dashboards, the bench summarizer, and regression tests key on exact
//! dotted names — so every name emitted in code must be registered in
//! `METRIC_FAMILIES` (in `crates/telemetry/src/lib.rs`), match the
//! dotted grammar, and every registered family must actually be
//! emitted somewhere (no dead documentation).
//!
//! The rule reads names from direct literals
//! (`reg.counter("io.shard.records")`) and from `format!` calls with a
//! literal template (`reg.counter(&format!("io.codec.{name}.bytes_in"))`,
//! where each `{...}` hole becomes a `*` wildcard matching one or more
//! segments). Names built through opaque variables cannot be checked
//! and are skipped — keep templates inline where possible.
//!
//! Span names (`reg.span(...)` / `reg.time(...)`) are part of the same
//! namespace — trace trees, the bench-report stage breakdown, and the
//! Chrome/flamegraph exporters key on them — so they are held to the
//! identical grammar and registration requirements.
//!
//! HealthSpec rule names (`spec.rule("name", ...)` in
//! `drai_telemetry::monitor`) are interned into the namespace as
//! `monitor.rule.<name>` counters, so literal rule names at `.rule(`
//! call sites are checked as that derived pattern against the same
//! grammar and registry.

use crate::lexer::{LexFile, Tok};
use crate::{FileClass, Finding, MetricFamily, SourceFile, Workspace};

/// Rule id.
pub const RULE: &str = "telemetry-names";

/// Where the metric-family registry lives.
pub const REGISTRY_FILE: &str = "crates/telemetry/src/lib.rs";

/// Registry constant name inside [`REGISTRY_FILE`].
pub const REGISTRY_CONST: &str = "METRIC_FAMILIES";

const METRIC_METHODS: &[&str] = &["counter", "gauge", "histogram", "span", "time"];

/// HealthSpec builder method whose first (literal) argument becomes a
/// `monitor.rule.<name>` counter at runtime.
const HEALTH_RULE_METHOD: &str = "rule";

/// Namespace prefix HealthSpec rule names are interned under.
const HEALTH_RULE_PREFIX: &str = "monitor.rule";

/// One metric-name use site.
#[derive(Debug, Clone)]
pub struct Usage {
    /// Dotted pattern; `*` marks a `format!` hole.
    pub pattern: String,
    /// Line of the call.
    pub line: u32,
    /// Which registry method was called.
    pub method: String,
}

/// True when the rule scans this file.
fn in_scope(file: &SourceFile) -> bool {
    matches!(
        file.class,
        FileClass::Lib | FileClass::Bin | FileClass::Bench
    ) && (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
}

/// Extract metric-name use sites from non-test code.
pub fn collect_usages(file: &SourceFile) -> Vec<Usage> {
    let lex = &file.lex;
    let toks = &lex.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if lex.is_test_token(i) {
            continue;
        }
        let Some(method) = lex.ident_at(i) else {
            continue;
        };
        let is_health_rule = method == HEALTH_RULE_METHOD;
        if !METRIC_METHODS.contains(&method) && !is_health_rule {
            continue;
        }
        if i == 0 || !lex.punct_at(i - 1, '.') || !lex.punct_at(i + 1, '(') {
            continue;
        }
        // Argument start: skip any leading `&`s.
        let mut j = i + 2;
        while lex.punct_at(j, '&') {
            j += 1;
        }
        if is_health_rule {
            // `.rule("name", ...)` — the literal rule name is interned
            // as `monitor.rule.<name>`. Dynamic names are skipped, like
            // dynamic metric names.
            if let Some(Tok::Str { value, .. }) = toks.get(j).map(|t| &t.kind) {
                out.push(Usage {
                    pattern: format!("{HEALTH_RULE_PREFIX}.{value}"),
                    line: toks[i].line,
                    method: "health-rule".to_string(),
                });
            }
            continue;
        }
        let pattern = match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Str { value, .. }) => Some(value.clone()),
            Some(Tok::Ident(id)) if id == "format" && lex.punct_at(j + 1, '!') => {
                // First string literal inside the format! call.
                let mut k = j + 2;
                let mut template = None;
                while k < toks.len() && !lex.punct_at(k, ')') {
                    if let Tok::Str { value, .. } = &toks[k].kind {
                        template = Some(value.clone());
                        break;
                    }
                    k += 1;
                }
                template.map(|t| format_to_pattern(&t))
            }
            _ => None, // dynamic name — not statically checkable
        };
        if let Some(pattern) = pattern {
            out.push(Usage {
                pattern,
                line: toks[i].line,
                method: method.to_string(),
            });
        }
    }
    out
}

/// Turn a `format!` template into a dotted pattern: each `{...}` hole
/// becomes a marker, and any segment containing a marker becomes `*`.
fn format_to_pattern(template: &str) -> String {
    const HOLE: char = '\u{1}';
    let chars: Vec<char> = template.chars().collect();
    let mut flat = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => {
                flat.push('{');
                i += 2;
            }
            '}' if chars.get(i + 1) == Some(&'}') => {
                flat.push('}');
                i += 2;
            }
            '{' => {
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                i += 1; // past '}'
                flat.push(HOLE);
            }
            c => {
                flat.push(c);
                i += 1;
            }
        }
    }
    flat.split('.')
        .map(|seg| {
            if seg.contains(HOLE) {
                "*".to_string()
            } else {
                seg.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Check one pattern against the dotted grammar:
/// `seg(.seg)+` where `seg` is `[a-z0-9_]+` or `*`.
fn grammar_ok(pattern: &str) -> bool {
    let segs: Vec<&str> = pattern.split('.').collect();
    if segs.len() < 2 {
        return false;
    }
    segs.iter().all(|seg| {
        *seg == "*"
            || (!seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
    })
}

/// True when two dotted patterns can name the same metric. A `*` on
/// either side matches one or more segments.
pub fn patterns_unify(a: &str, b: &str) -> bool {
    let a: Vec<&str> = a.split('.').collect();
    let b: Vec<&str> = b.split('.').collect();
    unify(&a, &b)
}

fn unify(a: &[&str], b: &[&str]) -> bool {
    match (a.first(), b.first()) {
        (None, None) => true,
        (Some(&"*"), _) => (1..=b.len()).any(|k| unify(&a[1..], &b[k..])),
        (_, Some(&"*")) => (1..=a.len()).any(|k| unify(&a[k..], &b[1..])),
        (Some(x), Some(y)) => x == y && unify(&a[1..], &b[1..]),
        _ => false,
    }
}

/// Parse the `METRIC_FAMILIES` literal list out of the telemetry crate.
pub fn parse_families(lex: &LexFile) -> Vec<MetricFamily> {
    let toks = &lex.tokens;
    let Some(start) = (0..toks.len()).find(|&i| lex.ident_at(i) == Some(REGISTRY_CONST)) else {
        return Vec::new();
    };
    // Skip the type annotation; the value list is the first `[` after `=`.
    let Some(eq) = (start..toks.len()).find(|&i| lex.punct_at(i, '=')) else {
        return Vec::new();
    };
    let mut families = Vec::new();
    let mut depth = 0i64;
    for tok in toks.iter().skip(eq) {
        match &tok.kind {
            Tok::P('[') => depth += 1,
            Tok::P(']') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            Tok::Str { value, .. } if depth > 0 => families.push(MetricFamily {
                pattern: value.clone(),
                line: tok.line,
            }),
            _ => {}
        }
    }
    families
}

/// Direction 1: every emitted name is well-formed and registered.
pub fn check_file(file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    for u in collect_usages(file) {
        if !grammar_ok(&u.pattern) {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: u.line,
                message: format!(
                    "metric name `{}` ({}) does not match the dotted grammar `seg(.seg)+`, segments `[a-z0-9_]+`",
                    u.pattern, u.method
                ),
            });
            continue;
        }
        if ws.metric_families.is_empty() {
            continue; // reported once by check_workspace
        }
        if !ws
            .metric_families
            .iter()
            .any(|f| patterns_unify(&f.pattern, &u.pattern))
        {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: u.line,
                message: format!(
                    "metric name `{}` ({}) is not registered in {REGISTRY_CONST} ({REGISTRY_FILE})",
                    u.pattern, u.method
                ),
            });
        }
    }
}

/// Direction 2: every registered family is emitted somewhere.
pub fn check_workspace(ws: &Workspace, out: &mut Vec<Finding>) {
    let registry_present = ws.files.iter().any(|f| f.rel == REGISTRY_FILE);
    if ws.metric_families.is_empty() {
        if registry_present {
            out.push(Finding {
                rule: RULE,
                file: REGISTRY_FILE.to_string(),
                line: 1,
                message: format!(
                    "{REGISTRY_CONST} registry not found or empty — metric names cannot be checked"
                ),
            });
        }
        return;
    }
    let mut usages: Vec<Usage> = Vec::new();
    for file in ws.files.iter().filter(|f| in_scope(f)) {
        usages.extend(collect_usages(file));
    }
    for fam in &ws.metric_families {
        if !grammar_ok(&fam.pattern) {
            out.push(Finding {
                rule: RULE,
                file: REGISTRY_FILE.to_string(),
                line: fam.line,
                message: format!(
                    "registered family `{}` does not match the dotted grammar",
                    fam.pattern
                ),
            });
            continue;
        }
        if !usages
            .iter()
            .any(|u| patterns_unify(&fam.pattern, &u.pattern))
        {
            out.push(Finding {
                rule: RULE,
                file: REGISTRY_FILE.to_string(),
                line: fam.line,
                message: format!(
                    "registered family `{}` is never emitted — dead or undocumented rename; update {REGISTRY_CONST}",
                    fam.pattern
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;
    use std::path::PathBuf;

    fn ws_with(files: Vec<SourceFile>, families: &[&str]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files,
            metric_families: families
                .iter()
                .map(|p| MetricFamily {
                    pattern: p.to_string(),
                    line: 10,
                })
                .collect(),
            shim_manifests: Vec::new(),
            crate_manifests: Vec::new(),
        }
    }

    fn run_file(rel: &str, src: &str, families: &[&str]) -> Vec<Finding> {
        let ws = ws_with(vec![], families);
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &ws, &mut out);
        out
    }

    #[test]
    fn registered_literal_passes() {
        let src = r#"fn f(r: &Registry) { r.counter("io.shard.records").incr(); }"#;
        assert!(run_file("crates/io/src/x.rs", src, &["io.shard.records"]).is_empty());
    }

    #[test]
    fn unregistered_literal_fires() {
        let src = r#"fn f(r: &Registry) { r.counter("io.shard.surprise").incr(); }"#;
        let f = run_file("crates/io/src/x.rs", src, &["io.shard.records"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not registered"));
    }

    #[test]
    fn bad_grammar_fires() {
        for name in ["flat", "Has.Upper", "io..empty", "io.bad-dash"] {
            let src = format!(r#"fn f(r: &Registry) {{ r.gauge("{name}").set(1); }}"#);
            let f = run_file("crates/io/src/x.rs", &src, &["io.shard.records"]);
            assert_eq!(f.len(), 1, "{name} should fail grammar");
            assert!(f[0].message.contains("grammar"), "{name}: {f:?}");
        }
    }

    #[test]
    fn format_holes_become_wildcards() {
        assert_eq!(
            format_to_pattern("io.codec.{name}.bytes_in"),
            "io.codec.*.bytes_in"
        );
        assert_eq!(format_to_pattern("{}.ns"), "*.ns");
        assert_eq!(format_to_pattern("{base}.records"), "*.records");
        assert_eq!(
            format_to_pattern("pipeline.{}.{}.retries"),
            "pipeline.*.*.retries"
        );
    }

    #[test]
    fn format_usage_checked_against_registry() {
        let src = r#"fn f(r: &Registry, k: &str) { r.counter(&format!("io.fault.{k}")).incr(); }"#;
        assert!(run_file(
            "crates/io/src/x.rs",
            src,
            &["io.fault.injected", "io.fault.write_transient"]
        )
        .is_empty());
        let f = run_file("crates/io/src/x.rs", src, &["io.retry.attempts"]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn span_names_are_held_to_the_same_grammar_and_registry() {
        let good = r#"fn f(r: &Registry) { let _s = r.span("io.shard.write_all"); }"#;
        assert!(run_file("crates/io/src/x.rs", good, &["io.shard.write_all"]).is_empty());

        let unregistered = r#"fn f(r: &Registry) { let _s = r.span("io.shard.mystery"); }"#;
        let f = run_file("crates/io/src/x.rs", unregistered, &["io.shard.write_all"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not registered"));

        let bad_grammar = r#"fn f(r: &Registry) { r.time("Bad.Span", || ()); }"#;
        let f = run_file("crates/io/src/x.rs", bad_grammar, &["io.shard.write_all"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("grammar"));

        // format!-built span names become wildcard patterns, no leading &.
        let templated = r#"fn f(r: &Registry, n: &str) { let _s = r.span(format!("bench.{n}")); }"#;
        assert!(run_file("crates/bench/src/x.rs", templated, &["bench.*"]).is_empty());
    }

    #[test]
    fn span_family_counts_as_emitted() {
        let emitting = source_file(
            "crates/io/src/x.rs",
            r#"fn f(r: &Registry) { let _s = r.span("io.prefetch.worker"); }"#,
        );
        let ws = ws_with(vec![emitting], &["io.prefetch.worker"]);
        let mut out = Vec::new();
        check_workspace(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn health_rule_names_checked_as_monitor_rule_counters() {
        let families = &["monitor.rule.*", "executor.queue_depth"];
        let good = r#"fn f(s: HealthSpec) -> HealthSpec { s.rule("queue_saturated", "executor.queue_depth", Condition::GaugeAbove(4)) }"#;
        assert!(run_file("crates/core/src/x.rs", good, families).is_empty());

        // Uppercase/dashed rule names break the derived pattern's grammar.
        let bad = r#"fn f(s: HealthSpec) -> HealthSpec { s.rule("Bad-Name", "executor.queue_depth", Condition::GaugeAbove(4)) }"#;
        let f = run_file("crates/core/src/x.rs", bad, families);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("grammar"));
        assert!(f[0].message.contains("monitor.rule.Bad-Name"));

        // Without the monitor.rule.* family the derived name is unregistered.
        let f = run_file("crates/core/src/x.rs", good, &["executor.queue_depth"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not registered"));
        assert!(f[0].message.contains("health-rule"));

        // Dynamic rule names are skipped, like dynamic metric names.
        let dynamic = r#"fn f(s: HealthSpec, n: &str) -> HealthSpec { s.rule(n, "executor.queue_depth", Condition::GaugeAbove(4)) }"#;
        assert!(run_file("crates/core/src/x.rs", dynamic, &[]).is_empty());

        // A non-call `rule` field or `fn rule` definition is not a use site.
        let not_calls = r#"
struct S { rule: String }
impl S {
    fn rule(self, name: &str) -> S { self }
}
fn g(s: &S) -> &str { &s.rule }
"#;
        assert!(run_file("crates/core/src/x.rs", not_calls, &[]).is_empty());
    }

    #[test]
    fn health_rule_usage_satisfies_registered_family() {
        let emitting = source_file(
            "crates/core/src/x.rs",
            r#"fn f(s: HealthSpec) -> HealthSpec { s.rule("no_progress", "executor.items_completed", Condition::StallFor(8)) }"#,
        );
        let ws = ws_with(vec![emitting], &["monitor.rule.*"]);
        let mut out = Vec::new();
        check_workspace(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_files_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Registry::new().counter("c").incr(); }
}
"#;
        assert!(run_file("crates/io/src/x.rs", src, &["io.shard.records"]).is_empty());
        let loose = r#"fn f(r: &Registry) { r.counter("x").incr(); }"#;
        assert!(run_file("tests/telemetry.rs", loose, &[]).is_empty());
        assert!(run_file("examples/quickstart.rs", loose, &[]).is_empty());
        assert!(run_file("shims/criterion/src/lib.rs", loose, &[]).is_empty());
    }

    #[test]
    fn dead_family_fires_and_live_family_passes() {
        let emitting = source_file(
            "crates/io/src/x.rs",
            r#"fn f(r: &Registry) { r.counter("io.shard.records").incr(); }"#,
        );
        let ws = ws_with(vec![emitting], &["io.shard.records", "io.shard.ghost"]);
        let mut out = Vec::new();
        check_workspace(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("io.shard.ghost"));
        assert!(out[0].message.contains("never emitted"));
    }

    #[test]
    fn wildcard_family_satisfied_by_wildcard_usage() {
        let emitting = source_file(
            "crates/core/src/x.rs",
            r#"fn f(r: &Registry, base: &str) { r.counter(&format!("{base}.records")).add(1); }"#,
        );
        let ws = ws_with(vec![emitting], &["pipeline.*.*.records"]);
        let mut out = Vec::new();
        check_workspace(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unify_semantics() {
        assert!(patterns_unify("io.shard.records", "io.shard.records"));
        assert!(patterns_unify("io.fault.*", "io.fault.write_transient"));
        assert!(patterns_unify("*.records", "pipeline.*.*.records"));
        assert!(patterns_unify("*.ns", "*.ns"));
        assert!(!patterns_unify("io.shard.records", "io.shard.bytes_in"));
        assert!(!patterns_unify("io.shard", "io.shard.records"));
    }

    #[test]
    fn parse_families_from_source() {
        let src = r#"
/// Registered metric families.
pub const METRIC_FAMILIES: &[&str] = &[
    "io.shard.records",
    "io.codec.*.bytes_in",
];
"#;
        let fams = parse_families(&crate::lexer::lex(src));
        let names: Vec<&str> = fams.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(names, vec!["io.shard.records", "io.codec.*.bytes_in"]);
    }
}
