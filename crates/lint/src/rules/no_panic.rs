//! `no-panic-in-lib`: library code of the data-plane crates must not
//! contain panic paths. A corrupt shard or a truncated GRIB message is
//! *data*, not a programming error — it must surface as a `Result` the
//! pipeline can quarantine, never abort the worker thread (rayon
//! propagates panics to the whole batch). Tests, benches and examples
//! are exempt, as are the control-plane crates whose panics indicate
//! real bugs.
//!
//! Flagged in library (non-test) code of `core`, `io`, `formats`,
//! `transform`:
//!
//! * `.unwrap()` / `.expect(...)` calls,
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` invocations,
//! * `assert!`-family macros adjacent to an indexing expression (the
//!   classic "check then index" pattern whose failure is an abort).

use crate::lexer::Tok;
use crate::{FileClass, Finding, SourceFile};

/// Rule id.
pub const RULE: &str = "no-panic-in-lib";

/// Crates whose library code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &["core", "io", "formats", "transform"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// True when the rule applies to this file at all.
fn in_scope(file: &SourceFile) -> bool {
    file.class == FileClass::Lib && PANIC_FREE_CRATES.contains(&file.crate_name.as_str())
}

/// Scan one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    let lex = &file.lex;
    let toks = &lex.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if lex.is_test_token(i) {
            continue;
        }
        let Tok::Ident(name) = &tok.kind else {
            continue;
        };
        let line = tok.line;
        // `.unwrap()` / `.expect(` — method position only.
        if (name == "unwrap" || name == "expect")
            && i > 0
            && lex.punct_at(i - 1, '.')
            && lex.punct_at(i + 1, '(')
        {
            out.push(finding(
                file,
                line,
                format!(".{name}() in library code — propagate a Result instead"),
            ));
            continue;
        }
        // panic-family macros.
        if PANIC_MACROS.contains(&name.as_str()) && lex.punct_at(i + 1, '!') {
            out.push(finding(
                file,
                line,
                format!("{name}! in library code — return an error instead of aborting"),
            ));
            continue;
        }
        // assert!-family next to an indexing expression.
        if ASSERT_MACROS.contains(&name.as_str())
            && lex.punct_at(i + 1, '!')
            && indexing_near(file, line)
        {
            out.push(finding(
                file,
                line,
                format!("{name}! guarding an indexing expression — use a checked accessor and propagate the error"),
            ));
        }
    }
}

/// True when an indexing expression (`ident[`, `][`, or `)[`) appears on
/// `line` or the following line.
fn indexing_near(file: &SourceFile, line: u32) -> bool {
    let toks = &file.lex.tokens;
    for i in 1..toks.len() {
        if toks[i].line != line && toks[i].line != line + 1 {
            continue;
        }
        if !matches!(toks[i].kind, Tok::P('[')) {
            continue;
        }
        match &toks[i - 1].kind {
            Tok::Ident(_) | Tok::P(']') | Tok::P(')') => return true,
            _ => {}
        }
    }
    false
}

fn finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: RULE,
        file: file.rel.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    #[test]
    fn unwrap_in_lib_fires() {
        let f = run(
            "crates/io/src/x.rs",
            "fn f(v: Option<u8>) -> u8 { v.unwrap() }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE);
        assert!(f[0].message.contains(".unwrap()"));
    }

    #[test]
    fn expect_and_macros_fire() {
        let src = r#"
fn a(v: Option<u8>) -> u8 { v.expect("present") }
fn b() { panic!("boom"); }
fn c() { unreachable!(); }
fn d() { todo!() }
"#;
        let f = run("crates/formats/src/x.rs", src);
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_exempt() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert!(run("crates/tensor/src/x.rs", src).is_empty());
        assert!(run("crates/domains/src/x.rs", src).is_empty());
        assert!(run("shims/rand/src/lib.rs", src).is_empty());
        assert!(run("tests/end_to_end.rs", src).is_empty());
        assert!(run("examples/quickstart.rs", src).is_empty());
    }

    #[test]
    fn test_modules_exempt() {
        let src = r#"
fn lib() -> u8 { 0 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1u8).unwrap(); panic!("fine in tests"); }
}
"#;
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = r##"
// calling unwrap() here would panic!()
fn f() -> &'static str { "never .unwrap() in a literal" }
fn g() -> &'static str { r#"raw panic!()"# }
"##;
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_allowed() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0).max(v.unwrap_or_default()) }";
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_adjacent_assert_fires() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { assert!(i < v.len()); v[i] }";
        let f = run("crates/transform/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("indexing"));
    }

    #[test]
    fn plain_assert_without_indexing_allowed() {
        let src = "fn f(n: u32) { assert!(n > 0, \"need at least one attempt\"); }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
