//! `shim-parity`: shim crates are vendored, API-compatible subsets of
//! external crates (`shims/README.md`). The whole point is that any
//! shim can be deleted and replaced by the real crate with zero code
//! changes elsewhere — which only holds if shims depend on nothing but
//! `std`. This rule flags `use`/`extern crate` of anything outside the
//! standard library in shim sources, and any dependency entry in a
//! shim's `Cargo.toml`.

use crate::{FileClass, Finding, SourceFile, Workspace};

/// Rule id.
pub const RULE: &str = "shim-parity";

/// Path roots a shim may import.
const ALLOWED_ROOTS: &[&str] = &["std", "core", "alloc", "crate", "self", "super"];

/// Scan one shim source file for non-std imports.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.class != FileClass::Shim {
        return;
    }
    let lex = &file.lex;
    let toks = &lex.tokens;
    // Rust-2018 uniform paths let `use regex_gen::X;` name a module
    // declared in this file — collect those so they aren't mistaken
    // for external crates.
    let mut local_mods = Vec::new();
    for i in 0..toks.len() {
        if lex.ident_at(i) == Some("mod") {
            if let Some(name) = lex.ident_at(i + 1) {
                local_mods.push(name.to_string());
            }
        }
    }
    for (i, tok) in toks.iter().enumerate() {
        let Some(kw) = lex.ident_at(i) else { continue };
        let (root_idx, what) = if kw == "use" {
            // `use ::path` — skip the leading `::`.
            let mut j = i + 1;
            while lex.punct_at(j, ':') {
                j += 1;
            }
            (j, "use")
        } else if kw == "extern" && lex.ident_at(i + 1) == Some("crate") {
            (i + 2, "extern crate")
        } else {
            continue;
        };
        let Some(root) = lex.ident_at(root_idx) else {
            continue;
        };
        if !ALLOWED_ROOTS.contains(&root) && !local_mods.iter().any(|m| m == root) {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: tok.line,
                message: format!(
                    "shim imports `{root}` via `{what}` — shims may only use std so they stay deletable"
                ),
            });
        }
    }
}

/// Scan every `shims/*/Cargo.toml` for dependency entries.
pub fn check_manifests(ws: &Workspace, out: &mut Vec<Finding>) {
    for (rel, contents) in &ws.shim_manifests {
        let mut in_dep_section = false;
        for (idx, raw) in contents.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_dep_section = line.trim_matches(['[', ']']).ends_with("dependencies");
                continue;
            }
            if in_dep_section && !line.is_empty() && !line.starts_with('#') {
                out.push(Finding {
                    rule: RULE,
                    file: rel.clone(),
                    line: (idx + 1) as u32,
                    message: format!(
                        "shim manifest declares a dependency (`{line}`) — shims must be dependency-free"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    #[test]
    fn std_imports_pass() {
        let src = "use std::sync::Arc;\nuse core::fmt;\nuse crate::inner;\nuse self::x;\nuse super::y;\nuse ::std::io;";
        assert!(run("shims/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cross_shim_import_fires() {
        let f = run("shims/rayon/src/lib.rs", "use crossbeam::channel;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("crossbeam"));
    }

    #[test]
    fn workspace_import_fires() {
        let f = run(
            "shims/proptest/src/lib.rs",
            "use drai_telemetry::Registry;\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn extern_crate_checked() {
        assert!(run("shims/rand/src/lib.rs", "extern crate std;\n").is_empty());
        assert_eq!(
            run("shims/rand/src/lib.rs", "extern crate rayon;\n").len(),
            1
        );
    }

    #[test]
    fn uniform_path_to_local_module_passes() {
        let src = "mod regex_gen;\npub use regex_gen::RegexError;\nuse regex_gen::compile;\n";
        assert!(run("shims/proptest/src/lib.rs", src).is_empty());
    }

    #[test]
    fn non_shim_files_exempt() {
        assert!(run("crates/io/src/lib.rs", "use rayon::prelude::*;\n").is_empty());
    }

    #[test]
    fn manifest_dependency_fires() {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![],
            metric_families: vec![],
            crate_manifests: vec![],
            shim_manifests: vec![(
                "shims/rayon/Cargo.toml".to_string(),
                "[package]\nname = \"rayon\"\n\n[dependencies]\ncrossbeam = { path = \"../crossbeam\" }\n".to_string(),
            )],
        };
        let mut out = Vec::new();
        check_manifests(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("crossbeam"));
    }

    #[test]
    fn manifest_without_dependencies_passes() {
        let ws = Workspace {
            root: PathBuf::new(),
            files: vec![],
            metric_families: vec![],
            crate_manifests: vec![],
            shim_manifests: vec![(
                "shims/rand/Cargo.toml".to_string(),
                "[package]\nname = \"rand\"\nversion.workspace = true\n\n[dependencies]\n# none: shims are std-only\n\n[lib]\npath = \"src/lib.rs\"\n".to_string(),
            )],
        };
        let mut out = Vec::new();
        check_manifests(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
