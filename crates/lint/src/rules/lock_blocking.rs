//! `lock-across-blocking`: a live lock guard must not span a blocking
//! channel operation, thread join, or backoff sleep. This is the exact
//! deadlock-under-backpressure shape the streaming executor must never
//! regress into: a worker holding a `parking_lot` guard blocks on
//! `send` into a full bounded channel, the consumer that would drain
//! the channel needs the same guard, and the chain wedges with every
//! queue full. Holding a guard across `thread::join` or a retry sleep
//! has the same structure with a slower clock.
//!
//! Recognised blocking operations: `.send(..)` / `.recv()` /
//! `.recv_timeout(..)` / `.send_timeout(..)` (channels), `.join()`
//! with no arguments (thread handles — `Vec::join(sep)` takes an
//! argument and is ignored), `sleep(..)` in call position, and
//! `.wait(..)` (condvars/barriers).

use crate::model;
use crate::{FileClass, Finding, SourceFile};
use std::collections::HashMap;

/// Rule id.
pub const RULE: &str = "lock-across-blocking";

fn in_scope(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Lib | FileClass::Bin)
        && (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
}

/// Scan one file: guard spans come from the model; blocking tokens are
/// matched inside each span.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    let m = model::build(&file.lex);
    if m.locks.is_empty() {
        return;
    }
    let locks: HashMap<String, model::LockKind> =
        m.locks.iter().map(|l| (l.name.clone(), l.kind)).collect();
    let lex = &file.lex;
    for f in &m.fns {
        for span in model::guard_spans(lex, f.body, &locks, &m.braces) {
            if lex.is_test_token(span.acq.token) {
                continue;
            }
            for i in span.acq.token + 1..=span.live.1.min(lex.tokens.len() - 1) {
                let Some(op) = blocking_op(lex, i) else {
                    continue;
                };
                out.push(Finding {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: lex.tokens[i].line,
                    message: format!(
                        "guard of lock `{}` (acquired line {}) is held across blocking `{op}` — \
                         under backpressure this wedges every thread that needs the lock; \
                         drop the guard before blocking",
                        span.acq.lock, span.acq.line
                    ),
                });
                break; // one finding per guard span is enough
            }
        }
    }
}

/// If token `i` is a blocking call, return its display name.
fn blocking_op(lex: &crate::lexer::LexFile, i: usize) -> Option<&'static str> {
    let name = lex.ident_at(i)?;
    let method = i > 0 && lex.punct_at(i - 1, '.');
    let called = lex.punct_at(i + 1, '(');
    match name {
        "send" if method && called => Some("send"),
        "recv" if method && called => Some("recv"),
        "recv_timeout" if method && called => Some("recv_timeout"),
        "send_timeout" if method && called => Some("send_timeout"),
        // Only the no-argument form: `handle.join()`, not `v.join(", ")`.
        "join" if method && called && lex.punct_at(i + 2, ')') => Some("join"),
        "sleep" if called => Some("sleep"),
        "wait" if method && called => Some("wait"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    const DECLS: &str = "struct S { state: Mutex<u8> }\n";

    #[test]
    fn guard_across_send_fires() {
        let src = format!(
            "{DECLS}fn f(s: &S, tx: &Sender<u8>) {{\n    let g = s.state.lock();\n    tx.send(*g).ok();\n}}"
        );
        let f = run("crates/core/src/x.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send"));
        assert!(f[0].message.contains("state"));
    }

    #[test]
    fn guard_dropped_before_send_is_clean() {
        let src = format!(
            "{DECLS}fn f(s: &S, tx: &Sender<u8>) {{\n    let g = s.state.lock();\n    let v = *g;\n    drop(g);\n    tx.send(v).ok();\n}}"
        );
        assert!(run("crates/core/src/x.rs", &src).is_empty());
    }

    #[test]
    fn temporary_scoped_to_statement_is_clean() {
        let src = format!(
            "{DECLS}fn f(s: &S, tx: &Sender<u8>) {{\n    let v = *s.state.lock();\n    tx.send(v).ok();\n}}"
        );
        assert!(run("crates/core/src/x.rs", &src).is_empty());
    }

    #[test]
    fn guard_across_recv_join_sleep_fire() {
        let src = format!(
            "{DECLS}\
             fn a(s: &S, rx: &Receiver<u8>) {{ let g = s.state.lock(); rx.recv().ok(); }}\n\
             fn b(s: &S, h: JoinHandle<()>) {{ let g = s.state.lock(); h.join().ok(); }}\n\
             fn c(s: &S) {{ let g = s.state.lock(); std::thread::sleep(BACKOFF); }}"
        );
        let f = run("crates/core/src/x.rs", &src);
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn string_join_with_separator_is_not_blocking() {
        let src = format!(
            "{DECLS}fn f(s: &S, parts: &[String]) -> String {{\n    let g = s.state.lock();\n    parts.join(\", \")\n}}"
        );
        assert!(run("crates/core/src/x.rs", &src).is_empty());
    }

    #[test]
    fn scrutinee_guard_across_send_fires() {
        let src = format!(
            "{DECLS}fn f(s: &S, tx: &Sender<u8>) {{\n    for v in s.state.lock().iter() {{\n        tx.send(*v).ok();\n    }}\n}}"
        );
        let f = run("crates/core/src/x.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn tests_and_out_of_scope_exempt() {
        let src = format!(
            "{DECLS}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t(s: &S, tx: &Sender<u8>) {{ let g = s.state.lock(); tx.send(1).ok(); }}\n}}"
        );
        assert!(run("crates/core/src/x.rs", &src).is_empty());
        let plain = format!(
            "{DECLS}fn f(s: &S, tx: &Sender<u8>) {{ let g = s.state.lock(); tx.send(1).ok(); }}"
        );
        assert!(run("tests/streaming.rs", &plain).is_empty());
        assert!(run("examples/quickstart.rs", &plain).is_empty());
    }
}
