//! `gauge-balance`: every telemetry gauge increment must have a
//! matching decrement, an absolute `set`, or an RAII scope guard in
//! the same crate. A gauge that only ever goes up is not a gauge — it
//! is a leak: one early-return or panic on the decrement path and
//! `executor.inflight`-style metrics drift upward forever, turning the
//! saturation dashboards the paper's readiness pipeline depends on
//! into fiction.
//!
//! Gauge identity is name-based, like the lock rules: a gauge is a
//! `Gauge`-typed struct field (from `crate::model`), a local bound
//! from a `registry.gauge(..)` call (`let g = reg.gauge("x");`), or a
//! direct `reg.gauge("x").add(..)` chain (keyed by the metric-name
//! literal). Sites with a non-literal delta (`g.add(delta)`) are
//! treated as balanced — the sign is unknowable lexically, and the
//! false-positive cost of guessing outweighs the miss.

use crate::lexer::LexFile;
use crate::model;
use crate::{FileClass, Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, HashSet};

/// Rule id.
pub const RULE: &str = "gauge-balance";

fn in_scope(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Lib | FileClass::Bin)
        && (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
}

/// Per-gauge tally of call sites across one crate.
#[derive(Debug, Default)]
struct Tally {
    /// First `.add(<positive literal>)` site, for the report location.
    first_inc: Option<(String, u32)>,
    incs: usize,
    decs: usize,
    sets: usize,
    /// `.add(expr)` with a lexically unknown sign.
    unknown: usize,
    /// `.inc_scope()` RAII sites (self-balancing).
    scoped: usize,
}

/// Whole-workspace pass: tally per `(crate, gauge)` and report gauges
/// that only ever go up.
pub fn check_workspace(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut tallies: BTreeMap<(String, String), Tally> = BTreeMap::new();

    // Pass 1: gauge names declared per crate (struct fields).
    let mut fields: BTreeMap<&str, HashSet<String>> = BTreeMap::new();
    let mut models: Vec<(usize, model::FileModel)> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !in_scope(file) {
            continue;
        }
        let m = model::build(&file.lex);
        let set = fields.entry(file.crate_name.as_str()).or_default();
        for g in &m.gauges {
            set.insert(g.name.clone());
        }
        models.push((fi, m));
    }

    // Pass 2: call sites.
    for (fi, _m) in &models {
        let file = &ws.files[*fi];
        let lex = &file.lex;
        let known = &fields[file.crate_name.as_str()];
        let lets = let_bound_gauges(lex);
        for i in 0..lex.tokens.len() {
            let Some(method) = lex.ident_at(i) else {
                continue;
            };
            if !matches!(method, "add" | "set" | "inc_scope") {
                continue;
            }
            if i == 0 || !lex.punct_at(i - 1, '.') || !lex.punct_at(i + 1, '(') {
                continue;
            }
            if lex.is_test_token(i) {
                continue;
            }
            let Some(key) = gauge_key(lex, i - 1, known, &lets) else {
                continue;
            };
            let t = tallies.entry((file.crate_name.clone(), key)).or_default();
            match method {
                "set" => t.sets += 1,
                "inc_scope" => t.scoped += 1,
                _ => match literal_delta_sign(lex, i + 1) {
                    Some(s) if s > 0 => {
                        t.incs += 1;
                        if t.first_inc.is_none() {
                            t.first_inc = Some((file.rel.clone(), lex.tokens[i].line));
                        }
                    }
                    Some(_) => t.decs += 1,
                    None => t.unknown += 1,
                },
            }
        }
    }

    for ((crate_name, gauge), t) in &tallies {
        if t.incs > 0 && t.decs == 0 && t.sets == 0 && t.unknown == 0 {
            let (file, line) = t.first_inc.clone().expect("incs > 0 implies a site");
            out.push(Finding {
                rule: RULE,
                file,
                line,
                message: format!(
                    "gauge `{gauge}` is incremented but never decremented, set, or \
                     RAII-scoped anywhere in crate `{crate_name}` — one missed exit \
                     path and the metric drifts up forever; pair with `.add(-n)`, \
                     `.set(..)`, or hold an `inc_scope()` guard"
                ),
            });
        }
    }
}

/// Resolve the gauge identity of a method call's receiver, or `None`
/// when the receiver is not gauge-shaped. `dot` is the `.` token.
fn gauge_key(
    lex: &LexFile,
    dot: usize,
    fields: &HashSet<String>,
    lets: &HashSet<String>,
) -> Option<String> {
    if let Some(name) = model::receiver_name(lex, dot) {
        return (fields.contains(&name) || lets.contains(&name)).then_some(name);
    }
    // Direct chain: `reg.gauge("name").add(..)` — receiver is the `)`
    // of the `gauge(..)` call; key by the metric-name literal.
    direct_gauge_literal(lex, dot)
}

/// If the tokens before `dot` are `gauge ( "lit" )`, return the literal.
fn direct_gauge_literal(lex: &LexFile, dot: usize) -> Option<String> {
    let close = dot.checked_sub(1)?;
    if !lex.punct_at(close, ')') {
        return None;
    }
    let lit = close.checked_sub(1)?;
    let open = lit.checked_sub(1)?;
    let callee = open.checked_sub(1)?;
    if lex.punct_at(open, '(') && lex.ident_at(callee) == Some("gauge") {
        if let crate::lexer::Tok::Str { value, .. } = &lex.tokens.get(lit)?.kind {
            return Some(value.clone());
        }
    }
    None
}

/// Names bound by `let g = ...gauge(...)...;` in this file.
fn let_bound_gauges(lex: &LexFile) -> HashSet<String> {
    let mut out = HashSet::new();
    for i in 0..lex.tokens.len() {
        if lex.ident_at(i) != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if lex.ident_at(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = lex.ident_at(j) else {
            continue;
        };
        if !lex.punct_at(j + 1, '=') {
            continue;
        }
        // Does the initializer (up to `;`) call `.gauge(`?
        let mut k = j + 2;
        while k < lex.tokens.len() && !lex.punct_at(k, ';') {
            if lex.ident_at(k) == Some("gauge")
                && lex.punct_at(k - 1, '.')
                && lex.punct_at(k + 1, '(')
            {
                out.insert(name.to_string());
                break;
            }
            k += 1;
        }
    }
    out
}

/// Sign of a literal delta argument: `( 1 )` → `+1`, `( - 1 )` → `-1`,
/// anything else → `None` (unknown).
fn literal_delta_sign(lex: &LexFile, open: usize) -> Option<i32> {
    use crate::lexer::Tok;
    match (
        lex.tokens.get(open + 1).map(|t| &t.kind),
        lex.tokens.get(open + 2).map(|t| &t.kind),
        lex.tokens.get(open + 3).map(|t| &t.kind),
    ) {
        (Some(Tok::Num), Some(Tok::P(')')), _) => Some(1),
        (Some(Tok::P('-')), Some(Tok::Num), Some(Tok::P(')'))) => Some(-1),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;
    use std::path::PathBuf;

    fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, src)| source_file(rel, src))
                .collect(),
            metric_families: vec![],
            shim_manifests: vec![],
            crate_manifests: vec![],
        }
    }

    fn run(files: Vec<(&str, &str)>) -> Vec<Finding> {
        let mut out = Vec::new();
        check_workspace(&ws_of(files), &mut out);
        out
    }

    const DECLS: &str = "struct S { inflight: Arc<Gauge> }\n";

    #[test]
    fn unbalanced_inc_fires() {
        let src = format!("{DECLS}fn f(s: &S) {{ s.inflight.add(1); }}");
        let f = run(vec![("crates/core/src/x.rs", src.as_str())]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inflight"));
        assert!(f[0].message.contains("never decremented"));
    }

    #[test]
    fn matched_dec_in_other_file_same_crate_is_clean() {
        let inc = format!("{DECLS}fn f(s: &S) {{ s.inflight.add(1); }}");
        let dec = "fn g(s: &S) { s.inflight.add(-1); }";
        let f = run(vec![
            ("crates/core/src/x.rs", inc.as_str()),
            ("crates/core/src/y.rs", dec),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dec_in_other_crate_does_not_balance() {
        let inc = format!("{DECLS}fn f(s: &S) {{ s.inflight.add(1); }}");
        let dec = format!("{DECLS}fn g(s: &S) {{ s.inflight.add(-1); }}");
        let f = run(vec![
            ("crates/core/src/x.rs", inc.as_str()),
            ("crates/io/src/y.rs", dec.as_str()),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn set_balances() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ s.inflight.add(1); }}\nfn r(s: &S) {{ s.inflight.set(0); }}"
        );
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }

    #[test]
    fn raii_scope_balances() {
        let src = format!("{DECLS}fn f(s: &S) {{ let _g = s.inflight.inc_scope(); work(); }}");
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }

    #[test]
    fn unknown_sign_is_not_flagged() {
        let src = format!("{DECLS}fn f(s: &S, d: i64) {{ s.inflight.add(1); s.inflight.add(d); }}");
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }

    #[test]
    fn direct_registry_chain_keys_by_literal() {
        let src = "fn f(reg: &Registry) { reg.gauge(\"exec.depth\").add(1); }";
        let f = run(vec![("crates/core/src/x.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("exec.depth"));
        let balanced = "fn f(reg: &Registry) { reg.gauge(\"exec.depth\").add(1); }\nfn g(reg: &Registry) { reg.gauge(\"exec.depth\").add(-1); }";
        assert!(run(vec![("crates/core/src/x.rs", balanced)]).is_empty());
    }

    #[test]
    fn let_bound_gauge_is_tracked() {
        let src = "fn f(reg: &Registry) { let depth = reg.gauge(\"exec.depth\"); depth.add(1); }";
        let f = run(vec![("crates/core/src/x.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn non_gauge_add_ignored() {
        let src = "fn f(p: *const u8, n: usize) -> *const u8 { unsafe { p.add(n) } }\nfn g(w: Wrapping<u8>) { w.add(1); }";
        assert!(run(vec![("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn tests_exempt() {
        let src = format!(
            "{DECLS}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t(s: &S) {{ s.inflight.add(1); }}\n}}"
        );
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }
}
