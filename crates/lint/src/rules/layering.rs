//! `layering`: the crate DAG is an architectural invariant, not an
//! accident of whatever `use` statements happen to compile. Each drai
//! crate is assigned a layer; a crate's `[dependencies]` (and its
//! source-level `use drai_*` imports) may only reach *strictly lower*
//! layers. This stops refactors from silently inverting the
//! architecture — e.g. `drai-io` growing a dependency on `drai-core`,
//! or `drai-telemetry` (the bottom of the stack, used by everything)
//! reaching up into domain code.
//!
//! The layer map:
//!
//! | layer | crates |
//! |-------|--------|
//! | 0 | `drai-telemetry`, `drai-tensor`, `drai-lint` |
//! | 1 | `drai-io` |
//! | 2 | `drai-formats`, `drai-transform`, `drai-provenance`, `drai-sim` |
//! | 3 | `drai-core` |
//! | 4 | `drai-cache` |
//! | 5 | `drai-sched` |
//! | 6 | `drai-domains` |
//! | 7 | `drai-bench`, `drai` (root package) |
//!
//! `[dev-dependencies]` are exempt: test-only edges cannot invert the
//! runtime architecture (integration tests legitimately pull in upper
//! layers as fixtures). Shim crates are covered by `shim-parity`
//! (they depend on nothing), not by this rule. A drai crate missing
//! from the map is itself a finding — new crates must be placed
//! deliberately.

use crate::model;
use crate::{FileClass, Finding, SourceFile, Workspace};

/// Rule id.
pub const RULE: &str = "layering";

/// Architectural layer of every known drai crate (package names).
pub const LAYERS: &[(&str, u32)] = &[
    ("drai-telemetry", 0),
    ("drai-tensor", 0),
    ("drai-lint", 0),
    ("drai-io", 1),
    ("drai-formats", 2),
    ("drai-transform", 2),
    ("drai-provenance", 2),
    ("drai-sim", 2),
    ("drai-core", 3),
    ("drai-cache", 4),
    ("drai-sched", 5),
    ("drai-domains", 6),
    ("drai-bench", 7),
    ("drai", 7),
];

fn layer_of(package: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == package).map(|(_, l)| *l)
}

/// One `[dependencies]` entry naming a drai crate.
#[derive(Debug)]
struct Dep {
    name: String,
    line: u32,
}

/// Parsed subset of one manifest.
#[derive(Debug, Default)]
struct Manifest {
    package: Option<String>,
    deps: Vec<Dep>,
}

/// Minimal line-oriented TOML walk: track the current `[section]`,
/// read `name = ...` from `[package]`, and collect `drai*` keys from
/// runtime dependency sections. `[workspace.dependencies]` is the
/// shared version table, not a dependency edge, and is skipped, as are
/// `dev-dependencies` sections.
fn parse_manifest(contents: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in contents.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            // `[dependencies.drai-core]` names the dep in the header.
            if let Some(dep) = runtime_dep_section(&section) {
                if dep.starts_with("drai") {
                    m.deps.push(Dep {
                        name: dep.trim_matches('"').to_string(),
                        line: lineno,
                    });
                }
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        if section == "package" && key == "name" {
            let val = line[eq + 1..].trim().trim_matches('"');
            m.package = Some(val.to_string());
        }
        if is_runtime_dep_table(&section) {
            // `drai-core = {..}` or `drai-core.workspace = true`.
            let name = key.split('.').next().unwrap_or(key).trim_matches('"');
            if name.starts_with("drai") {
                m.deps.push(Dep {
                    name: name.to_string(),
                    line: lineno,
                });
            }
        }
    }
    m
}

/// True when `section` is an inline runtime dependency table
/// (`dependencies`, `target.'cfg(..)'.dependencies`).
fn is_runtime_dep_table(section: &str) -> bool {
    section == "dependencies"
        || (section.ends_with(".dependencies") && !section.starts_with("workspace"))
}

/// If `section` is `dependencies.<name>` (or `target.*.dependencies.<name>`),
/// return the dependency name.
fn runtime_dep_section(section: &str) -> Option<&str> {
    if section.starts_with("workspace") || section.contains("dev-dependencies") {
        return None;
    }
    let (prefix, name) = section.rsplit_once('.')?;
    (prefix == "dependencies" || prefix.ends_with(".dependencies")).then_some(name)
}

/// Workspace pass: manifests first, then a source-level `use` check
/// as a backstop (a path dependency missed by the manifest parse still
/// shows up as `use drai_x::...` in the importing crate).
pub fn check_workspace(ws: &Workspace, out: &mut Vec<Finding>) {
    for (rel, contents) in &ws.crate_manifests {
        let m = parse_manifest(contents);
        let Some(package) = m.package else {
            continue; // virtual manifest (workspace root without [package])
        };
        if !package.starts_with("drai") {
            continue; // shims are shim-parity's problem
        }
        let Some(own) = layer_of(&package) else {
            out.push(Finding {
                rule: RULE,
                file: rel.clone(),
                line: 1,
                message: format!(
                    "crate `{package}` is not in the layering map — add it to \
                     LAYERS in crates/lint/src/rules/layering.rs at a deliberate layer"
                ),
            });
            continue;
        };
        for dep in &m.deps {
            match layer_of(&dep.name) {
                Some(dl) if dl < own => {}
                Some(dl) => out.push(Finding {
                    rule: RULE,
                    file: rel.clone(),
                    line: dep.line,
                    message: format!(
                        "`{package}` (layer {own}) depends on `{}` (layer {dl}) — \
                         dependencies must point strictly down the layer stack",
                        dep.name
                    ),
                }),
                None => out.push(Finding {
                    rule: RULE,
                    file: rel.clone(),
                    line: dep.line,
                    message: format!(
                        "`{package}` depends on unmapped crate `{}` — add it to the layering map",
                        dep.name
                    ),
                }),
            }
        }
    }

    for file in &ws.files {
        check_file_uses(file, out);
    }
}

fn in_scope(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Lib | FileClass::Bin)
        && (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
}

/// Source-level backstop: `use drai_x::...` in library/binary code must
/// also point strictly down.
fn check_file_uses(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    let own_package = if file.crate_name == "drai" {
        "drai".to_string()
    } else {
        format!("drai-{}", file.crate_name)
    };
    let Some(own) = layer_of(&own_package) else {
        return; // unmapped crate already reported at the manifest
    };
    let m = model::build(&file.lex);
    for u in &m.uses {
        if file.lex.is_test_token(u.token) {
            continue; // unit-test modules may use dev-dependencies
        }
        let Some(rest) = u.root.strip_prefix("drai_") else {
            continue;
        };
        let dep = format!("drai-{}", rest.replace('_', "-"));
        if dep == own_package {
            continue; // a crate's own bins import its lib — not an edge
        }
        match layer_of(&dep) {
            Some(dl) if dl < own => {}
            Some(dl) => out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: u.line,
                message: format!(
                    "`{own_package}` (layer {own}) imports `{dep}` (layer {dl}) — \
                     imports must point strictly down the layer stack"
                ),
            }),
            None => out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: u.line,
                message: format!("import of unmapped crate `{dep}` — add it to the layering map"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;
    use std::path::PathBuf;

    fn ws_of(manifests: Vec<(&str, &str)>, files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, src)| source_file(rel, src))
                .collect(),
            metric_families: vec![],
            shim_manifests: vec![],
            crate_manifests: manifests
                .into_iter()
                .map(|(rel, c)| (rel.to_string(), c.to_string()))
                .collect(),
        }
    }

    fn run(manifests: Vec<(&str, &str)>, files: Vec<(&str, &str)>) -> Vec<Finding> {
        let mut out = Vec::new();
        check_workspace(&ws_of(manifests, files), &mut out);
        out
    }

    #[test]
    fn downward_deps_are_clean() {
        let m = "[package]\nname = \"drai-core\"\n\n[dependencies]\ndrai-io.workspace = true\ndrai-telemetry.workspace = true\nparking_lot.workspace = true\n";
        assert!(run(vec![("crates/core/Cargo.toml", m)], vec![]).is_empty());
    }

    #[test]
    fn upward_dep_fires() {
        let m = "[package]\nname = \"drai-io\"\n\n[dependencies]\ndrai-core.workspace = true\n";
        let f = run(vec![("crates/io/Cargo.toml", m)], vec![]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("strictly down"));
    }

    #[test]
    fn same_layer_dep_fires() {
        let m = "[package]\nname = \"drai-formats\"\n\n[dependencies]\ndrai-sim.workspace = true\n";
        let f = run(vec![("crates/formats/Cargo.toml", m)], vec![]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn dev_dependencies_exempt() {
        let m = "[package]\nname = \"drai-io\"\n\n[dev-dependencies]\ndrai-core.workspace = true\n\n[target.'cfg(test)'.dev-dependencies]\ndrai-domains.workspace = true\n";
        assert!(run(vec![("crates/io/Cargo.toml", m)], vec![]).is_empty());
    }

    #[test]
    fn workspace_dependency_table_is_not_an_edge() {
        let m = "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\ndrai-core = { path = \"crates/core\" }\n\n[package]\nname = \"drai\"\n\n[dependencies]\ndrai-core.workspace = true\n";
        assert!(run(vec![("Cargo.toml", m)], vec![]).is_empty());
    }

    #[test]
    fn unmapped_crate_fires() {
        let m = "[package]\nname = \"drai-quantum\"\n\n[dependencies]\n";
        let f = run(vec![("crates/quantum/Cargo.toml", m)], vec![]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("layering map"));
    }

    #[test]
    fn dotted_dep_section_counts() {
        let m = "[package]\nname = \"drai-io\"\n\n[dependencies.drai-core]\nworkspace = true\n";
        let f = run(vec![("crates/io/Cargo.toml", m)], vec![]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn source_use_backstop_fires() {
        let src = "use drai_core::pipeline::Pipeline;\n\npub fn f() {}\n";
        let f = run(vec![], vec![("crates/io/src/bad.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("imports must point strictly down"));
    }

    #[test]
    fn source_use_downward_and_tests_clean() {
        let down = "use drai_telemetry::Registry;\npub fn f() {}\n";
        let test_file = "use drai_domains::bio;\nfn main() {}\n";
        let own_bin = "use drai_io::shard::Shard;\nfn main() {}\n";
        let f = run(
            vec![],
            vec![
                ("crates/io/src/good.rs", down),
                ("crates/io/src/bin/io-tool.rs", own_bin),
                ("crates/io/tests/integration.rs", test_file),
                ("tests/end_to_end.rs", test_file),
            ],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn real_workspace_table_is_consistent() {
        // Every mapped crate name is unique.
        let mut names: Vec<&str> = LAYERS.iter().map(|(n, _)| *n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), LAYERS.len());
    }
}
