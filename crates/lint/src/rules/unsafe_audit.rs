//! `unsafe-audit`: every `unsafe` block, function, impl, or trait must
//! carry an adjacent `// SAFETY:` comment explaining why the invariants
//! hold. Applies everywhere — including shims and tests — because an
//! unargued `unsafe` is unreviewable wherever it lives. Crates this
//! rule proves clean get `#![forbid(unsafe_code)]` so the guarantee is
//! compiler-enforced from then on.

use crate::lexer::Tok;
use crate::{Finding, SourceFile};

/// Rule id.
pub const RULE: &str = "unsafe-audit";

/// How many lines above the `unsafe` token a `SAFETY:` comment may sit.
const ADJACENCY_LINES: u32 = 3;

/// Scan one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let lex = &file.lex;
    for tok in &lex.tokens {
        let Tok::Ident(name) = &tok.kind else {
            continue;
        };
        if name != "unsafe" {
            continue;
        }
        let line = tok.line;
        let documented = lex.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + ADJACENCY_LINES >= line
        });
        if !documented {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment — justify the invariants or remove it".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_fires() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let f = run("crates/io/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
    }

    #[test]
    fn documented_unsafe_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads\n    unsafe { *p }\n}";
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }

    #[test]
    fn distant_safety_comment_does_not_count() {
        let src =
            "// SAFETY: stale note way up here\n\n\n\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(run("crates/io/src/x.rs", src).len(), 1);
    }

    #[test]
    fn applies_to_shims_and_tests_too() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(run("shims/rayon/src/lib.rs", src).len(), 1);
        assert_eq!(run("tests/end_to_end.rs", src).len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "// unsafe is discussed here only\nfn f() -> &'static str { \"unsafe\" }";
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }
}
