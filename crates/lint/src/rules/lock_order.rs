//! `lock-order`: a global lock-acquisition-order graph over the whole
//! workspace. Every `Mutex`/`RwLock`-typed struct field or static is a
//! node (keyed by crate + field name); acquiring lock `b` while a guard
//! of lock `a` is still live adds the edge `a → b`. A cycle in that
//! graph — `a` before `b` in one function, `b` before `a` in another,
//! possibly in different files — is the classic ABBA deadlock shape,
//! and a self-edge (reacquiring a lock already held) deadlocks
//! immediately under parking_lot's non-reentrant locks.
//!
//! The analysis is intraprocedural and name-based (see
//! `crate::model`): it cannot see acquisitions hidden behind function
//! calls, and two same-named fields on different structs in one crate
//! share a node. Both approximations are deliberate — the first misses
//! some orderings (fix: keep lock scopes tight), the second
//! over-approximates (fix: name locks distinctly, or suppress with a
//! reason).

use crate::model::{self, LockKind};
use crate::{FileClass, Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Rule id.
pub const RULE: &str = "lock-order";

/// One acquisition-order edge with a witness site.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// Where `to` was acquired under `from`.
    file: String,
    line: u32,
}

fn in_scope(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Lib | FileClass::Bin)
        && (file.rel.starts_with("crates/") || file.rel.starts_with("src/"))
}

/// Whole-workspace pass: collect lock declarations per crate, then
/// nested acquisitions, then report every edge that participates in a
/// cycle.
pub fn check_workspace(ws: &Workspace, out: &mut Vec<Finding>) {
    // Pass 1: lock names per crate.
    let mut locks_by_crate: HashMap<&str, HashMap<String, LockKind>> = HashMap::new();
    let mut models: Vec<(usize, model::FileModel)> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !in_scope(file) {
            continue;
        }
        let m = model::build(&file.lex);
        let per_crate = locks_by_crate.entry(file.crate_name.as_str()).or_default();
        for l in &m.locks {
            per_crate.insert(l.name.clone(), l.kind);
        }
        models.push((fi, m));
    }

    // Pass 2: nested acquisitions -> edges, keyed per crate (a field
    // name only means something within the crate that declares it).
    let mut edges: Vec<Edge> = Vec::new();
    for (fi, m) in &models {
        let file = &ws.files[*fi];
        let Some(locks) = locks_by_crate.get(file.crate_name.as_str()) else {
            continue;
        };
        if locks.is_empty() {
            continue;
        }
        for f in &m.fns {
            let spans = model::guard_spans(&file.lex, f.body, locks, &m.braces);
            // Skip spans whose tokens are test-region code.
            let spans: Vec<_> = spans
                .into_iter()
                .filter(|s| !file.lex.is_test_token(s.acq.token))
                .collect();
            for s in &spans {
                for inner in spans.iter().map(|t| &t.acq) {
                    if inner.token > s.acq.token && inner.token <= s.live.1 {
                        edges.push(Edge {
                            from: key(file, &s.acq.lock),
                            to: key(file, &inner.lock),
                            file: file.rel.clone(),
                            line: inner.line,
                        });
                    }
                }
            }
        }
    }

    report_cycles(&edges, out);
}

/// Crate-qualified lock name.
fn key(file: &SourceFile, lock: &str) -> String {
    format!("{}::{}", file.crate_name, lock)
}

/// Report self-edges and every edge lying on a directed cycle.
fn report_cycles(edges: &[Edge], out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for e in edges {
        if !seen_pairs.insert((e.from.clone(), e.to.clone())) {
            continue; // one report per ordered pair
        }
        if e.from == e.to {
            out.push(Finding {
                rule: RULE,
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "lock `{}` acquired while a guard of the same lock is live — immediate deadlock under non-reentrant locks",
                    e.from
                ),
            });
            continue;
        }
        if reachable(&adj, &e.to, &e.from) {
            // A witness of the reverse ordering, for the message.
            let reverse = edges
                .iter()
                .find(|r| r.from == e.to && reachable(&adj, &r.to, &e.from));
            let witness = reverse
                .map(|r| format!(" (reverse order at {}:{})", r.file, r.line))
                .unwrap_or_default();
            out.push(Finding {
                rule: RULE,
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "lock-order cycle: `{}` is acquired while holding `{}`, but a path orders them the other way{witness} — potential ABBA deadlock; pick one global order",
                    e.to, e.from
                ),
            });
        }
    }
}

/// DFS reachability over the acquisition graph.
fn reachable(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;
    use std::path::PathBuf;

    fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, src)| source_file(rel, src))
                .collect(),
            metric_families: vec![],
            shim_manifests: vec![],
            crate_manifests: vec![],
        }
    }

    fn run(files: Vec<(&str, &str)>) -> Vec<Finding> {
        let mut out = Vec::new();
        check_workspace(&ws_of(files), &mut out);
        out
    }

    const DECLS: &str = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n";

    #[test]
    fn abba_cycle_across_files_fires() {
        let f1 = format!("{DECLS}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}");
        let f2 = "fn two(s: &S) { let g = s.b.lock(); let h = s.a.lock(); }";
        let findings = run(vec![
            ("crates/core/src/x.rs", f1.as_str()),
            ("crates/core/src/y.rs", f2),
        ]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == RULE));
        assert!(findings[0].message.contains("ABBA") || findings[0].message.contains("cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let f1 = format!("{DECLS}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}");
        let f2 = "fn two(s: &S) { let g = s.a.lock(); s.b.lock().probe(); }";
        let findings = run(vec![
            ("crates/core/src/x.rs", f1.as_str()),
            ("crates/core/src/y.rs", f2),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn self_reacquisition_fires() {
        let src = format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); s.a.lock().touch(); }}");
        let findings = run(vec![("crates/core/src/x.rs", src.as_str())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("same lock"));
    }

    #[test]
    fn sequential_acquisitions_are_clean() {
        // Temporaries die at statement end — no nesting, no edge.
        let src = format!(
            "{DECLS}fn f(s: &S) {{ s.a.lock().touch(); s.b.lock().touch(); }}\n\
             fn g(s: &S) {{ s.b.lock().touch(); s.a.lock().touch(); }}"
        );
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }

    #[test]
    fn same_names_in_different_crates_do_not_interfere() {
        let f1 = format!("{DECLS}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}");
        // Reverse order, but in another crate: different nodes.
        let f2 = format!("{DECLS}fn two(s: &S) {{ let g = s.b.lock(); let h = s.a.lock(); }}");
        let findings = run(vec![
            ("crates/core/src/x.rs", f1.as_str()),
            ("crates/io/src/y.rs", f2.as_str()),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn three_party_cycle_detected() {
        let decls = "struct S { a: Mutex<u8>, b: Mutex<u8>, c: Mutex<u8> }\n";
        let src = format!(
            "{decls}\
             fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n\
             fn two(s: &S) {{ let g = s.b.lock(); let h = s.c.lock(); }}\n\
             fn three(s: &S) {{ let g = s.c.lock(); let h = s.a.lock(); }}"
        );
        let findings = run(vec![("crates/core/src/x.rs", src.as_str())]);
        assert_eq!(findings.len(), 3, "{findings:?}");
    }

    #[test]
    fn test_code_exempt() {
        let src = format!(
            "{DECLS}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n    #[test]\n    fn u(s: &S) {{ let g = s.b.lock(); let h = s.a.lock(); }}\n}}"
        );
        assert!(run(vec![("crates/core/src/x.rs", src.as_str())]).is_empty());
    }
}
