//! `no-wallclock`: `Instant::now()` / `SystemTime::now()` scattered
//! through the data plane breaks deterministic replay (PR 2's fault
//! injection is seeded; a run must be reproducible from its seed).
//! Time may be read in exactly three places: `drai-telemetry`, whose
//! `Stopwatch` type wraps timing for instrumentation, the retry
//! module's `SystemClock`, and the cache module's `WallClock` — the two
//! injectable clock boundaries. Everything else takes elapsed time
//! from those abstractions.

use crate::{FileClass, Finding, SourceFile};

/// Rule id.
pub const RULE: &str = "no-wallclock";

/// Files allowed to touch the wall clock directly.
const ALLOWED_FILES: &[&str] = &["crates/io/src/retry.rs", "crates/cache/src/clock.rs"];

/// Crates allowed to touch the wall clock directly.
const ALLOWED_CRATES: &[&str] = &["telemetry", "bench"];

fn in_scope(file: &SourceFile) -> bool {
    if !matches!(
        file.class,
        FileClass::Lib | FileClass::Bin | FileClass::Bench
    ) {
        return false;
    }
    if !(file.rel.starts_with("crates/") || file.rel.starts_with("src/")) {
        return false;
    }
    if ALLOWED_CRATES.contains(&file.crate_name.as_str()) {
        return false;
    }
    !ALLOWED_FILES.contains(&file.rel.as_str())
}

/// Scan one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(file) {
        return;
    }
    let lex = &file.lex;
    for i in 0..lex.tokens.len() {
        if lex.is_test_token(i) {
            continue;
        }
        let Some(ty) = lex.ident_at(i) else { continue };
        if ty != "Instant" && ty != "SystemTime" {
            continue;
        }
        // Instant :: now
        if lex.punct_at(i + 1, ':')
            && lex.punct_at(i + 2, ':')
            && lex.ident_at(i + 3) == Some("now")
        {
            out.push(Finding {
                rule: RULE,
                file: file.rel.clone(),
                line: lex.tokens[i].line,
                message: format!(
                    "{ty}::now() outside drai-telemetry — use telemetry::Stopwatch (or the retry Clock) so replay stays deterministic"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_file;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&source_file(rel, src), &mut out);
        out
    }

    #[test]
    fn instant_now_fires() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
        let f = run("crates/io/src/sink.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Instant::now"));
    }

    #[test]
    fn system_time_now_fires() {
        let src = "fn f() { let _ = std::time::SystemTime::now(); }";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn telemetry_and_retry_clock_exempt() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert!(run("crates/telemetry/src/lib.rs", src).is_empty());
        assert!(run("crates/io/src/retry.rs", src).is_empty());
        assert!(run("crates/cache/src/clock.rs", src).is_empty());
        assert!(run("crates/bench/src/main.rs", src).is_empty());
        // The allowlist covers only the clock seam, not the whole crate.
        assert_eq!(run("crates/cache/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn tests_and_examples_exempt() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert!(run("tests/end_to_end.rs", src).is_empty());
        assert!(run("examples/quickstart.rs", src).is_empty());
        let in_test = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
";
        assert!(run("crates/io/src/x.rs", in_test).is_empty());
    }

    #[test]
    fn elapsed_and_duration_are_fine() {
        let src = "fn f(s: &drai_telemetry::Stopwatch) -> u64 { s.elapsed_ns() }";
        assert!(run("crates/io/src/x.rs", src).is_empty());
    }
}
