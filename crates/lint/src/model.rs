//! A lightweight item/block model layered on the lexer.
//!
//! The v1 rules are purely lexical — they match token patterns anywhere
//! in a file. The concurrency rules added in v2 need *structure*: which
//! function a token lives in, which block a `let` guard is bound in,
//! which struct fields are `Mutex`/`RwLock`/`Gauge` typed, and what a
//! file imports. This module recovers exactly that much structure from
//! the token stream — no expression parsing, no type resolution — via
//! brace/paren/angle matching over the already comment- and
//! literal-clean token list.
//!
//! Everything here is an approximation and is documented as such where
//! it matters:
//!
//! * a guard bound with `let g = x.lock();` is modelled as live until
//!   the end of its enclosing block, or an explicit `drop(g)`;
//! * a guard born as a temporary in a `match`/`for`/`if let`/`while
//!   let` scrutinee is live until the end of the construct's first
//!   block (true Rust semantics keep match scrutinee temporaries alive
//!   through every arm — the first block is a sound lower bound that
//!   avoids false positives from `else` chains);
//! * a plain-`if`/`while` condition temporary dies at the block open,
//!   matching Rust's drop-before-branch semantics;
//! * any other temporary dies at the end of its statement.

use crate::lexer::{LexFile, Tok};
use std::collections::HashMap;

/// What flavour of lock a field holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<_>` (std or parking_lot).
    Mutex,
    /// `RwLock<_>`.
    RwLock,
}

/// A struct field or static whose type contains a lock.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Field/static identifier — the lock's name in the order graph.
    pub name: String,
    /// Declaration line.
    pub line: u32,
    /// Mutex or RwLock.
    pub kind: LockKind,
}

/// A struct field whose type mentions `Gauge`.
#[derive(Debug, Clone)]
pub struct GaugeDecl {
    /// Field identifier.
    pub name: String,
    /// Declaration line.
    pub line: u32,
}

/// One `fn` item (free function or method — the model does not care).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body's `{` and its matching `}`.
    pub body: (usize, usize),
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Line of the `impl` keyword.
    pub line: u32,
    /// Token indices of the block's `{` and its matching `}`.
    pub body: (usize, usize),
}

/// One `use` declaration, reduced to its root path segment.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// First path segment (`std`, `crate`, `drai_telemetry`, ...).
    pub root: String,
    /// Line of the `use` keyword.
    pub line: u32,
    /// Token index of the `use` keyword (for test-region checks).
    pub token: usize,
}

/// Structural model of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every `fn` with a body, in source order (methods included).
    pub fns: Vec<FnItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplItem>,
    /// Root segments of every `use` declaration.
    pub uses: Vec<UseDecl>,
    /// Lock-typed struct fields and statics declared in this file.
    pub locks: Vec<LockDecl>,
    /// Gauge-typed struct fields declared in this file.
    pub gauges: Vec<GaugeDecl>,
    /// `open brace token index -> closing brace token index` (and the
    /// reverse) for the whole file.
    pub braces: HashMap<usize, usize>,
}

/// One `.lock()` / `.read()` / `.write()` call whose receiver resolves
/// to a known lock name.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Lock name (the receiver's trailing field identifier).
    pub lock: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// Token index of the method identifier.
    pub token: usize,
    /// Source line.
    pub line: u32,
}

/// A lock guard and the token range over which it is live.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// The acquisition that produced the guard.
    pub acq: Acquisition,
    /// Live token range, inclusive on both ends.
    pub live: (usize, usize),
    /// True when bound to a named variable (`let g = ...`).
    pub named: bool,
}

/// Build the structural model for one lexed file.
pub fn build(lex: &LexFile) -> FileModel {
    let toks = &lex.tokens;
    let mut model = FileModel {
        braces: match_braces(toks),
        ..FileModel::default()
    };
    let mut i = 0usize;
    while i < toks.len() {
        let Some(kw) = lex.ident_at(i) else {
            i += 1;
            continue;
        };
        match kw {
            "use" => {
                // Skip leading `::` for `use ::std::...`.
                let mut j = i + 1;
                while lex.punct_at(j, ':') {
                    j += 1;
                }
                if let Some(root) = lex.ident_at(j) {
                    model.uses.push(UseDecl {
                        root: root.to_string(),
                        line: toks[i].line,
                        token: i,
                    });
                }
                i += 1;
            }
            "fn" => {
                // `fn` pointer types (`fn(u8) -> u8`) have no name —
                // only named items get a body entry.
                let Some(name) = lex.ident_at(i + 1) else {
                    i += 1;
                    continue;
                };
                match signature_end(lex, i + 2) {
                    SigEnd::Body(open) => {
                        let close = model.braces.get(&open).copied().unwrap_or(open);
                        model.fns.push(FnItem {
                            name: name.to_string(),
                            line: toks[i].line,
                            body: (open, close),
                        });
                        i = open + 1; // descend: nested fns are found too
                    }
                    SigEnd::Decl(after) => i = after,
                }
            }
            "impl" => {
                match signature_end(lex, i + 1) {
                    SigEnd::Body(open) => {
                        let close = model.braces.get(&open).copied().unwrap_or(open);
                        model.impls.push(ImplItem {
                            line: toks[i].line,
                            body: (open, close),
                        });
                        i = open + 1; // descend into methods
                    }
                    SigEnd::Decl(after) => i = after,
                }
            }
            "struct" => {
                i = scan_struct(lex, i, &mut model);
            }
            "static" | "const" => {
                i = scan_static(lex, i, &mut model);
            }
            _ => i += 1,
        }
    }
    model
}

/// Where a signature scan ended.
enum SigEnd {
    /// Token index of the body's `{`.
    Body(usize),
    /// Token index just past a `;` (bodyless declaration).
    Decl(usize),
}

/// Scan from `start` (just past `fn name` / `impl`) to the item's body
/// `{` or terminating `;`, skipping generics, parameter lists, return
/// types and where clauses. Angle depth treats `->` and `=>` arrows as
/// non-closing so `Fn(A) -> B` bounds do not unbalance the scan.
fn signature_end(lex: &LexFile, start: usize) -> SigEnd {
    let toks = &lex.tokens;
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut i = start;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::P('<') => angle += 1,
            Tok::P('>') => {
                let arrow = i > 0 && (lex.punct_at(i - 1, '-') || lex.punct_at(i - 1, '='));
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            }
            Tok::P('(') => paren += 1,
            Tok::P(')') => paren -= 1,
            Tok::P('[') => bracket += 1,
            Tok::P(']') => bracket -= 1,
            Tok::P('{') if angle == 0 && paren == 0 && bracket == 0 => return SigEnd::Body(i),
            Tok::P(';') if angle == 0 && paren == 0 && bracket == 0 => return SigEnd::Decl(i + 1),
            _ => {}
        }
        i += 1;
    }
    SigEnd::Decl(i)
}

/// Parse `struct Name { field: Type, ... }` collecting lock- and
/// gauge-typed fields. Tuple structs have unnameable fields and are
/// skipped. Returns the index to resume scanning from.
fn scan_struct(lex: &LexFile, kw: usize, model: &mut FileModel) -> usize {
    let toks = &lex.tokens;
    let open = match signature_end(lex, kw + 1) {
        SigEnd::Body(open) => open,
        SigEnd::Decl(after) => return after, // unit or tuple struct
    };
    let close = model.braces.get(&open).copied().unwrap_or(open);
    let mut i = open + 1;
    while i < close {
        // Field grammar: [pub [(..)]] name ':' type-tokens (',' | '}').
        if lex.ident_at(i) == Some("pub") {
            i += 1;
            if lex.punct_at(i, '(') {
                i = skip_delim(lex, i, '(', ')');
            }
        }
        let (Some(name), true) = (lex.ident_at(i), lex.punct_at(i + 1, ':')) else {
            i += 1;
            continue;
        };
        let name_line = toks[i].line;
        // Type tokens run to the `,` at depth 0 (or the struct's `}`).
        let mut j = i + 2;
        let mut depth = 0i64;
        let mut kind: Option<LockKind> = None;
        let mut has_gauge = false;
        while j < close {
            match &toks[j].kind {
                Tok::P('<') | Tok::P('(') | Tok::P('[') => depth += 1,
                Tok::P('>') | Tok::P(')') | Tok::P(']') => depth -= 1,
                Tok::P(',') if depth <= 0 => break,
                Tok::Ident(t) => {
                    if t == "Mutex" {
                        kind = kind.or(Some(LockKind::Mutex));
                    } else if t == "RwLock" {
                        kind = kind.or(Some(LockKind::RwLock));
                    } else if t == "Gauge" {
                        has_gauge = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(kind) = kind {
            model.locks.push(LockDecl {
                name: name.to_string(),
                line: name_line,
                kind,
            });
        }
        if has_gauge {
            model.gauges.push(GaugeDecl {
                name: name.to_string(),
                line: name_line,
            });
        }
        i = j + 1;
    }
    close + 1
}

/// Parse `static NAME: Type = ...;` / `const NAME: Type = ...;` for
/// lock-typed globals. Returns the index to resume from.
fn scan_static(lex: &LexFile, kw: usize, model: &mut FileModel) -> usize {
    let toks = &lex.tokens;
    let mut i = kw + 1;
    if lex.ident_at(i) == Some("mut") {
        i += 1;
    }
    let (Some(name), true) = (lex.ident_at(i), lex.punct_at(i + 1, ':')) else {
        return kw + 1;
    };
    let name_line = toks[i].line;
    let mut j = i + 2;
    let mut kind: Option<LockKind> = None;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::P('=') | Tok::P(';') => break,
            Tok::Ident(t) if t == "Mutex" => kind = kind.or(Some(LockKind::Mutex)),
            Tok::Ident(t) if t == "RwLock" => kind = kind.or(Some(LockKind::RwLock)),
            _ => {}
        }
        j += 1;
    }
    if let Some(kind) = kind {
        model.locks.push(LockDecl {
            name: name.to_string(),
            line: name_line,
            kind,
        });
    }
    j
}

/// Skip from an opening delimiter at `open` to just past its match.
fn skip_delim(lex: &LexFile, open: usize, oc: char, cc: char) -> usize {
    lex.match_delim(open, oc, cc)
        .map(|c| c + 1)
        .unwrap_or(open + 1)
}

/// Map every `{` to its `}` and back.
fn match_braces(toks: &[crate::lexer::Token]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Tok::P('{') => stack.push(i),
            Tok::P('}') => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                    map.insert(i, open);
                }
            }
            _ => {}
        }
    }
    map
}

/// The acquisition methods the lock rules recognise. All three take no
/// arguments, which is what separates `RwLock::read()`/`write()` from
/// the ubiquitous `io::Read::read(buf)` / `io::Write::write(buf)`.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// How the statement containing an acquisition binds its guard.
#[derive(Debug, Clone, PartialEq)]
enum StmtShape {
    /// `let g = ...;` with a simple identifier pattern.
    LetNamed(String),
    /// `let _ = ...` / destructuring `let` — guard dies with the
    /// statement (`let _ = x.lock()` drops immediately; close enough).
    LetAnon,
    /// `match` / `for` / `if let` / `while let` — scrutinee temporary,
    /// live through the construct's first block.
    Scrutinee,
    /// Plain `if` / `while` condition — temporary dies at block open.
    Condition,
    /// Anything else — temporary dies at statement end.
    Plain,
}

/// Find every recognised acquisition in `body` and compute its guard's
/// live span. `locks` maps lock name -> kind for the whole crate.
pub fn guard_spans(
    lex: &LexFile,
    body: (usize, usize),
    locks: &HashMap<String, LockKind>,
    braces: &HashMap<usize, usize>,
) -> Vec<GuardSpan> {
    let toks = &lex.tokens;
    let (open, close) = body;
    let mut spans = Vec::new();
    // Statement boundaries: a new statement starts after `;`, `{`, `}`.
    let mut stmt_start = open + 1;
    // Enclosing blocks: token index of each unclosed `{` seen so far.
    let mut block_stack: Vec<usize> = vec![open];
    let mut i = open + 1;
    while i < close {
        match &toks[i].kind {
            Tok::P('{') => {
                block_stack.push(i);
                stmt_start = i + 1;
            }
            Tok::P('}') => {
                block_stack.pop();
                stmt_start = i + 1;
            }
            Tok::P(';') => stmt_start = i + 1,
            Tok::Ident(m)
                if ACQUIRE_METHODS.contains(&m.as_str())
                    && lex.punct_at(i.wrapping_sub(1), '.')
                    && lex.punct_at(i + 1, '(')
                    && lex.punct_at(i + 2, ')') =>
            {
                if let Some(lock) = receiver_name(lex, i - 1) {
                    if locks.contains_key(&lock) {
                        let enclosing = block_stack.last().copied().unwrap_or(open);
                        let block_end = braces.get(&enclosing).copied().unwrap_or(close);
                        let shape = stmt_shape(lex, stmt_start);
                        let (live_end, named) = match &shape {
                            StmtShape::LetNamed(g) if binds_guard_directly(lex, stmt_start, i) => {
                                (drop_site(lex, i, block_end, g).unwrap_or(block_end), true)
                            }
                            // `let n = x.lock().len();` / `let v = *x.lock();`
                            // bind a derived value — the guard itself is a
                            // temporary and dies with the statement.
                            StmtShape::LetNamed(_) => (stmt_end(lex, i, close), false),
                            StmtShape::Scrutinee => (scrutinee_end(lex, i, braces, close), false),
                            StmtShape::Condition => (next_block_open(lex, i, close), false),
                            StmtShape::LetAnon | StmtShape::Plain => {
                                (stmt_end(lex, i, close), false)
                            }
                        };
                        spans.push(GuardSpan {
                            acq: Acquisition {
                                lock,
                                method: m.clone(),
                                token: i,
                                line: toks[i].line,
                            },
                            live: (i, live_end.min(close)),
                            named,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    spans
}

/// Resolve the receiver's trailing field identifier for a method call:
/// the token before the `.` at `dot`, skipping one index `[...]` group
/// (`self.inflight[s].add(1)` resolves to `inflight`).
pub(crate) fn receiver_name(lex: &LexFile, dot: usize) -> Option<String> {
    let mut i = dot.checked_sub(1)?;
    if lex.punct_at(i, ']') {
        // Walk back to the matching `[`.
        let mut depth = 0i64;
        loop {
            match lex.tokens.get(i).map(|t| &t.kind) {
                Some(Tok::P(']')) => depth += 1,
                Some(Tok::P('[')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            i = i.checked_sub(1)?;
        }
        i = i.checked_sub(1)?;
    }
    lex.ident_at(i).map(str::to_string)
}

/// Classify the statement starting at `stmt`.
fn stmt_shape(lex: &LexFile, stmt: usize) -> StmtShape {
    match lex.ident_at(stmt) {
        Some("let") => {
            let mut i = stmt + 1;
            if lex.ident_at(i) == Some("mut") {
                i += 1;
            }
            match lex.ident_at(i) {
                Some(name) if lex.punct_at(i + 1, '=') || lex.punct_at(i + 1, ':') => {
                    StmtShape::LetNamed(name.to_string())
                }
                _ => StmtShape::LetAnon,
            }
        }
        Some("match") | Some("for") => StmtShape::Scrutinee,
        Some("if") | Some("while") => {
            if lex.ident_at(stmt + 1) == Some("let") {
                StmtShape::Scrutinee
            } else {
                StmtShape::Condition
            }
        }
        _ => StmtShape::Plain,
    }
}

/// True when a `let` statement binds the guard itself: the acquisition
/// call is the whole initializer (`let g = x.lock();`) rather than a
/// value derived from a temporary guard (`let n = x.lock().len();`,
/// `let v = *x.lock();`). `acq` is the method-ident token.
fn binds_guard_directly(lex: &LexFile, stmt: usize, acq: usize) -> bool {
    // Nothing may follow the call but the statement's `;`.
    if !lex.punct_at(acq + 3, ';') {
        return false;
    }
    // A leading deref copies out of the guard instead of binding it.
    match (stmt..acq).find(|&k| lex.punct_at(k, '=')) {
        Some(eq) => !lex.punct_at(eq + 1, '*'),
        None => false,
    }
}

/// Token index of `drop ( g )` after `from` (searching to `limit`).
fn drop_site(lex: &LexFile, from: usize, limit: usize, guard: &str) -> Option<usize> {
    (from..limit).find(|&i| {
        lex.ident_at(i) == Some("drop")
            && lex.punct_at(i + 1, '(')
            && lex.ident_at(i + 2) == Some(guard)
            && lex.punct_at(i + 3, ')')
    })
}

/// End of a scrutinee temporary's span: the `}` matching the first `{`
/// found at relative paren/bracket depth 0 after the acquisition
/// (braces inside call arguments — closures — are skipped by the depth
/// guard).
fn scrutinee_end(
    lex: &LexFile,
    from: usize,
    braces: &HashMap<usize, usize>,
    limit: usize,
) -> usize {
    let open = next_block_open(lex, from, limit);
    braces.get(&open).copied().unwrap_or(limit)
}

/// First `{` at relative paren/bracket depth 0 after `from`.
fn next_block_open(lex: &LexFile, from: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    for i in from..limit {
        match lex.tokens.get(i).map(|t| &t.kind) {
            Some(Tok::P('(')) | Some(Tok::P('[')) => depth += 1,
            Some(Tok::P(')')) | Some(Tok::P(']')) => depth -= 1,
            Some(Tok::P('{')) if depth <= 0 => return i,
            _ => {}
        }
    }
    limit
}

/// End of a plain temporary's span: the next `;` at relative depth 0.
fn stmt_end(lex: &LexFile, from: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    for i in from..limit {
        match lex.tokens.get(i).map(|t| &t.kind) {
            Some(Tok::P('(')) | Some(Tok::P('[')) | Some(Tok::P('{')) => depth += 1,
            Some(Tok::P(')')) | Some(Tok::P(']')) | Some(Tok::P('}')) => depth -= 1,
            Some(Tok::P(';')) if depth <= 0 => return i,
            _ => {}
        }
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(src: &str) -> FileModel {
        build(&lex(src))
    }

    #[test]
    fn fns_and_impls_found() {
        let src = r#"
fn free(x: u8) -> u8 { x }
struct S { a: u32 }
impl S {
    fn method<'a, F: Fn(u8) -> u8>(&'a self, f: F) -> u8 { f(self.a as u8) }
}
trait T { fn decl(&self); }
"#;
        let m = model_of(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "method"]);
        assert_eq!(m.impls.len(), 1);
        // Bodies are properly brace-matched ranges.
        for f in &m.fns {
            assert!(f.body.0 < f.body.1, "{f:?}");
        }
    }

    #[test]
    fn lock_and_gauge_fields_found() {
        let src = r#"
pub struct Shared<'a> {
    pub index: Mutex<Vec<u8>>,
    names: parking_lot::RwLock<HashMap<String, u32>>,
    depth: Arc<Gauge>,
    inflight: &'a [Arc<Gauge>],
    plain: usize,
}
static GLOBAL: Mutex<u8> = Mutex::new(0);
"#;
        let m = model_of(src);
        let locks: Vec<(&str, LockKind)> =
            m.locks.iter().map(|l| (l.name.as_str(), l.kind)).collect();
        assert_eq!(
            locks,
            vec![
                ("index", LockKind::Mutex),
                ("names", LockKind::RwLock),
                ("GLOBAL", LockKind::Mutex),
            ]
        );
        let gauges: Vec<&str> = m.gauges.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(gauges, vec!["depth", "inflight"]);
    }

    #[test]
    fn use_roots_collected() {
        let m = model_of("use std::sync::Arc;\nuse ::core::fmt;\nuse drai_telemetry::Gauge;\n");
        let roots: Vec<&str> = m.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, vec!["std", "core", "drai_telemetry"]);
    }

    fn spans_of(src: &str, lock_names: &[(&str, LockKind)]) -> Vec<GuardSpan> {
        let f = lex(src);
        let m = build(&f);
        let locks: HashMap<String, LockKind> = lock_names
            .iter()
            .map(|(n, k)| (n.to_string(), *k))
            .collect();
        let body = m.fns[0].body;
        guard_spans(&f, body, &locks, &m.braces)
    }

    #[test]
    fn named_guard_lives_to_block_end() {
        let src = r#"
fn f(s: &S) {
    let g = s.index.lock();
    use_it(&g);
    more();
}
"#;
        let spans = spans_of(src, &[("index", LockKind::Mutex)]);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].named);
        // Live to the fn's closing brace — past the `more()` call.
        let f = lex(src);
        let more = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "more"))
            .unwrap();
        assert!(spans[0].live.1 > more);
    }

    #[test]
    fn drop_ends_named_guard() {
        let src = r#"
fn f(s: &S) {
    let g = s.index.lock();
    use_it(&g);
    drop(g);
    after();
}
"#;
        let spans = spans_of(src, &[("index", LockKind::Mutex)]);
        let f = lex(src);
        let after = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "after"))
            .unwrap();
        assert!(spans[0].live.1 < after, "{spans:?}");
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let src = r#"
fn f(s: &S) {
    s.index.lock().push(1);
    later();
}
"#;
        let spans = spans_of(src, &[("index", LockKind::Mutex)]);
        let f = lex(src);
        let later = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "later"))
            .unwrap();
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].named);
        assert!(spans[0].live.1 < later);
    }

    #[test]
    fn scrutinee_guard_spans_loop_body() {
        let src = r#"
fn f(s: &S) {
    for x in s.index.lock().iter() {
        work(x);
    }
    outside();
}
"#;
        let spans = spans_of(src, &[("index", LockKind::Mutex)]);
        let f = lex(src);
        let work = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "work"))
            .unwrap();
        let outside = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "outside"))
            .unwrap();
        assert!(spans[0].live.1 > work);
        assert!(spans[0].live.1 < outside);
    }

    #[test]
    fn plain_if_condition_guard_dies_at_block() {
        let src = r#"
fn f(s: &S) {
    if s.names.read().is_empty() {
        inside();
    }
}
"#;
        let spans = spans_of(src, &[("names", LockKind::RwLock)]);
        let f = lex(src);
        let inside = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "inside"))
            .unwrap();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].live.1 < inside, "{spans:?}");
    }

    #[test]
    fn io_read_write_with_args_not_an_acquisition() {
        let src = r#"
fn f(s: &S, buf: &mut [u8]) {
    s.file.read(buf);
    s.file.write(buf);
    s.names.write().insert(1);
}
"#;
        let spans = spans_of(
            src,
            &[("file", LockKind::RwLock), ("names", LockKind::RwLock)],
        );
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].acq.lock, "names");
    }

    #[test]
    fn indexed_receiver_resolves() {
        let src = "fn f(s: &S, i: usize) { let g = s.cells[i].lock(); g.touch(); }";
        let spans = spans_of(src, &[("cells", LockKind::Mutex)]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].acq.lock, "cells");
    }
}
