//! Command-line front end for `drai-lint`.
//!
//! ```text
//! drai-lint [--root DIR] [--format text|json] [--list-rules]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any finding is active,
//! 2 on usage or I/O errors. CI runs `--format json` and uploads the
//! report as an artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use drai_lint::{lint_workspace, Report, RULE_NAMES};

enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    format: Format,
    list_rules: bool,
}

fn usage() -> String {
    "usage: drai-lint [--root DIR] [--format text|json] [--list-rules]".to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut format = Format::Text;
    let mut list_rules = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let dir = argv
                    .next()
                    .ok_or_else(|| format!("--root needs a directory\n{}", usage()))?;
                root = Some(PathBuf::from(dir));
            }
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format must be `text` or `json`, got {other:?}\n{}",
                            usage()
                        ))
                    }
                };
            }
            "--list-rules" => list_rules = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let root = match root {
        Some(r) => r,
        // Default to the workspace root: two levels up from this
        // crate's manifest when run via `cargo run -p drai-lint`,
        // falling back to the current directory.
        None => {
            let from_manifest = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|m| m.parent().and_then(|p| p.parent()).map(PathBuf::from));
            from_manifest.unwrap_or_else(|| PathBuf::from("."))
        }
    };
    Ok(Args {
        root,
        format,
        list_rules,
    })
}

fn print_text(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for s in &report.suppressed {
        println!(
            "{}:{}: [{}] suppressed: {} (reason: {})",
            s.finding.file, s.finding.line, s.finding.rule, s.finding.message, s.reason
        );
    }
    println!(
        "drai-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in RULE_NAMES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drai-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => print_text(&report),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
