//! Command-line front end for `drai-lint`.
//!
//! ```text
//! drai-lint [--root DIR] [--format text|json] [--rule NAME]... [--list-rules]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any finding is active,
//! 2 on usage or I/O errors. CI runs `--format json` and uploads the
//! report as an artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use drai_lint::{lint_workspace, Report, RULE_NAMES};

enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    format: Format,
    rules: Vec<String>,
    list_rules: bool,
}

fn usage() -> String {
    "usage: drai-lint [--root DIR] [--format text|json] [--rule NAME]... [--list-rules]".to_string()
}

fn help() -> String {
    format!(
        "{}\n\n\
         Workspace-native static analysis for the DRAI codebase.\n\n\
         Options:\n\
         \x20 --root DIR       workspace root to scan (default: auto-detected)\n\
         \x20 --format FMT     report format: `text` (default) or `json`\n\
         \x20 --rule NAME      only report findings of NAME; repeatable.\n\
         \x20                  Other rules still run but are filtered from the\n\
         \x20                  report and the exit status.\n\
         \x20 --list-rules     print every rule name and exit\n\
         \x20 -h, --help       print this help and exit\n\n\
         Exit status (the CI contract):\n\
         \x20 0  workspace is clean (no active findings after filtering)\n\
         \x20 1  at least one active finding — suppressions with reasons\n\
         \x20    (`// drai-lint: allow(rule) reason=\"...\"`) do not count\n\
         \x20 2  usage error or I/O failure while scanning\n",
        usage()
    )
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut format = Format::Text;
    let mut rules = Vec::new();
    let mut list_rules = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let dir = argv
                    .next()
                    .ok_or_else(|| format!("--root needs a directory\n{}", usage()))?;
                root = Some(PathBuf::from(dir));
            }
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format must be `text` or `json`, got {other:?}\n{}",
                            usage()
                        ))
                    }
                };
            }
            "--rule" => {
                let name = argv
                    .next()
                    .ok_or_else(|| format!("--rule needs a rule name\n{}", usage()))?;
                if !RULE_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "unknown rule `{name}` — run --list-rules for the rule set\n{}",
                        usage()
                    ));
                }
                rules.push(name);
            }
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("{}", help());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let root = match root {
        Some(r) => r,
        // Default to the workspace root: two levels up from this
        // crate's manifest when run via `cargo run -p drai-lint`,
        // falling back to the current directory.
        None => {
            let from_manifest = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|m| m.parent().and_then(|p| p.parent()).map(PathBuf::from));
            from_manifest.unwrap_or_else(|| PathBuf::from("."))
        }
    };
    Ok(Args {
        root,
        format,
        rules,
        list_rules,
    })
}

/// Keep only findings (and suppressions) of the selected rules.
fn filter_report(report: Report, rules: &[String]) -> Report {
    if rules.is_empty() {
        return report;
    }
    let keep = |rule: &str| rules.iter().any(|r| r == rule);
    Report {
        findings: report
            .findings
            .into_iter()
            .filter(|f| keep(f.rule))
            .collect(),
        suppressed: report
            .suppressed
            .into_iter()
            .filter(|s| keep(s.finding.rule))
            .collect(),
        files_scanned: report.files_scanned,
    }
}

fn print_text(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for s in &report.suppressed {
        println!(
            "{}:{}: [{}] suppressed: {} (reason: {})",
            s.finding.file, s.finding.line, s.finding.rule, s.finding.message, s.reason
        );
    }
    println!(
        "drai-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in RULE_NAMES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drai-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let report = filter_report(report, &args.rules);
    match args.format {
        Format::Text => print_text(&report),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
