//! Suppression comments: `// drai-lint: allow(<rule>) reason="..."`.
//!
//! A suppression silences findings of one rule on its own line or the
//! line directly below (so it can sit at the end of the offending line
//! or on the line above it). The reason is mandatory and non-empty;
//! malformed suppressions are reported under the `suppression` rule,
//! and so are suppressions that match nothing — the allow-list cannot
//! rot silently.

use crate::lexer::LexFile;
use crate::RULE_NAMES;

/// Rule id for malformed/unused suppression findings.
pub const RULE: &str = "suppression";

const MARKER: &str = "drai-lint:";

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule being allowed.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the comment.
    pub line: u32,
    /// Last line of the comment (block comments can span lines).
    pub end_line: u32,
    /// Set by the engine when a finding matched.
    pub used: bool,
}

impl Suppression {
    /// True when this suppression covers a finding of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && line >= self.line && line <= self.end_line + 1
    }
}

/// A suppression comment the parser rejected.
#[derive(Debug, Clone)]
pub struct Malformed {
    /// Line of the comment.
    pub line: u32,
    /// Why it was rejected.
    pub message: String,
}

/// Extract all suppressions (and malformed attempts) from a lexed file.
pub fn collect(lex: &LexFile) -> (Vec<Suppression>, Vec<Malformed>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lex.comments {
        // Doc comments describe suppressions (this crate's own docs do);
        // only plain comments can enact one.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/*!")
            || c.text.starts_with("/**")
        {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[pos + MARKER.len()..].trim();
        match parse(body) {
            Ok((rule, reason)) => {
                if !RULE_NAMES.contains(&rule.as_str()) {
                    bad.push(Malformed {
                        line: c.line,
                        message: format!("suppression names unknown rule `{rule}`"),
                    });
                } else {
                    sups.push(Suppression {
                        rule,
                        reason,
                        line: c.line,
                        end_line: c.end_line,
                        used: false,
                    });
                }
            }
            Err(msg) => bad.push(Malformed {
                line: c.line,
                message: msg.to_string(),
            }),
        }
    }
    (sups, bad)
}

/// Parse `allow(<rule>) reason="..."`.
fn parse(body: &str) -> Result<(String, String), &'static str> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or("suppression must be `allow(<rule>) reason=\"...\"`")?;
    let close = rest
        .find(')')
        .ok_or("suppression is missing `)` after the rule name")?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return Err("suppression has an empty rule name");
    }
    let tail = rest[close + 1..].trim();
    let reason_body = tail
        .strip_prefix("reason=\"")
        .ok_or("suppression reason is mandatory: append reason=\"...\"")?;
    let end = reason_body
        .find('"')
        .ok_or("suppression reason is missing its closing quote")?;
    let reason = reason_body[..end].trim().to_string();
    if reason.is_empty() {
        return Err("suppression reason must not be empty");
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_valid_suppression() {
        let f = lex("let x = risky(); // drai-lint: allow(no-panic-in-lib) reason=\"bounds checked above\"\n");
        let (sups, bad) = collect(&f);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "no-panic-in-lib");
        assert_eq!(sups[0].reason, "bounds checked above");
        assert!(sups[0].covers("no-panic-in-lib", 1));
        assert!(sups[0].covers("no-panic-in-lib", 2));
        assert!(!sups[0].covers("no-panic-in-lib", 3));
        assert!(!sups[0].covers("unsafe-audit", 1));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let f = lex("// drai-lint: allow(no-panic-in-lib)\n");
        let (sups, bad) = collect(&f);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let f = lex("// drai-lint: allow(unsafe-audit) reason=\"  \"\n");
        let (sups, bad) = collect(&f);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let f = lex("// drai-lint: allow(made-up) reason=\"why not\"\n");
        let (sups, bad) = collect(&f);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("made-up"));
    }

    #[test]
    fn doc_comments_cannot_suppress() {
        let f = lex("//! Example: `// drai-lint: allow(no-panic-in-lib) reason=\"x\"`\n/// Same here: drai-lint: allow(bogus) reason=\"y\"\nfn f() {}\n");
        let (sups, bad) = collect(&f);
        assert!(sups.is_empty(), "{sups:?}");
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn ordinary_comments_ignored() {
        let f = lex("// just a note about drai, not a directive\n");
        let (sups, bad) = collect(&f);
        assert!(sups.is_empty());
        assert!(bad.is_empty());
    }
}
