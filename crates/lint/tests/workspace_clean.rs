//! Self-check: the workspace that ships `drai-lint` must itself be lint
//! clean, within the agreed suppression budget. This is the test CI runs
//! alongside the dedicated `lint` job, so a violation fails `cargo test`
//! even where the binary is not invoked.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn all_ten_rules_are_registered() {
    // The v2 rule set: six lexical rules, four model-based
    // concurrency/architecture rules, plus the suppression meta-rule.
    // A rule that silently drops out of RULE_NAMES stops being
    // suppressible and stops being listed — pin the full set.
    let expected = [
        "no-panic-in-lib",
        "telemetry-names",
        "unsafe-audit",
        "shim-parity",
        "error-context",
        "no-wallclock",
        "lock-order",
        "lock-across-blocking",
        "layering",
        "gauge-balance",
        "suppression",
    ];
    assert_eq!(drai_lint::RULE_NAMES, &expected);
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = drai_lint::lint_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "scan looks truncated");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn suppression_budget_respected() {
    let root = workspace_root();
    let report = drai_lint::lint_workspace(&root).expect("workspace scan succeeds");
    // The workspace currently needs exactly one suppression (the
    // documented panic-propagation contract in `io::parallel`). New
    // suppressions are a regression in their own right: shrink the
    // budget when one is removed, and justify any increase here.
    assert!(
        report.suppressed.len() <= 1,
        "suppression budget exceeded: {} > 1 — justify new suppressions in this test",
        report.suppressed.len()
    );
    let in_telemetry: Vec<_> = report
        .suppressed
        .iter()
        .filter(|f| f.finding.file.starts_with("crates/telemetry/"))
        .collect();
    assert!(
        in_telemetry.is_empty(),
        "drai-telemetry must need zero suppressions, found {in_telemetry:?}"
    );
}
