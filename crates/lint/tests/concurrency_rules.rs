//! End-to-end coverage for the drai-lint v2 concurrency rules and the
//! structural model they stand on: injected deadlock fixtures must be
//! flagged by the full `lint()` engine (not just the rule function),
//! the brace matcher must survive generated nesting torture, and every
//! real file in this workspace must brace-balance at the token level —
//! the invariant all guard-span math depends on.

use drai_lint::{lexer, lint, model, source_file, Workspace};
use std::path::{Path, PathBuf};

fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
    Workspace {
        root: PathBuf::new(),
        files: files
            .into_iter()
            .map(|(rel, src)| source_file(rel, src))
            .collect(),
        metric_families: vec![],
        shim_manifests: vec![],
        crate_manifests: vec![],
    }
}

/// The acceptance fixture: an ABBA lock-order cycle split across two
/// files plus a guard held across a bounded-channel `send`. The full
/// engine (rules + suppression pass) must surface both.
#[test]
fn injected_cycle_and_guard_across_send_are_detected() {
    let decls = "pub struct Shared { pub watermark: Mutex<u64>, pub incidents: Mutex<Vec<u32>> }\n";
    let forward = format!(
        "{decls}\
         pub fn forward(s: &Shared, tx: &Sender<u64>) {{\n\
         \x20   let wm = s.watermark.lock();\n\
         \x20   let inc = s.incidents.lock();\n\
         \x20   tx.send(*wm).ok();\n\
         }}\n"
    );
    let collect = "pub fn collect(s: &Shared) {\n\
         \x20   let inc = s.incidents.lock();\n\
         \x20   let wm = s.watermark.lock();\n\
         }\n";
    let report = lint(&ws_of(vec![
        ("crates/core/src/fixture_a.rs", forward.as_str()),
        ("crates/core/src/fixture_b.rs", collect),
    ]));

    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&"lock-order"),
        "ABBA cycle not flagged: {:?}",
        report.findings
    );
    assert!(
        rules.contains(&"lock-across-blocking"),
        "guard across send not flagged: {:?}",
        report.findings
    );
    // Both orderings of the cycle get a report, each naming the other
    // side's location so the fix is actionable from either end.
    let cycle_reports = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .count();
    assert_eq!(cycle_reports, 2, "{:?}", report.findings);
}

/// Suppressions must work for the v2 rules exactly as for v1.
#[test]
fn new_rules_honor_suppressions() {
    let src = "struct S { a: Mutex<u8> }\n\
         fn f(s: &S, tx: &Sender<u8>) {\n\
         \x20   let g = s.a.lock();\n\
         \x20   // drai-lint: allow(lock-across-blocking) reason=\"fixture: bounded channel is drained by this same thread\"\n\
         \x20   tx.send(*g).ok();\n\
         }\n";
    let report = lint(&ws_of(vec![("crates/core/src/fixture.rs", src)]));
    assert!(
        report.findings.is_empty(),
        "suppression ignored: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].finding.rule, "lock-across-blocking");
}

// ---- brace-matching fuzz ----

/// Deterministic LCG so failures replay exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Emit one statement, possibly recursing into nested blocks. Every
/// production is brace-balanced by construction, so token-level brace
/// balance is the oracle.
fn gen_stmt(rng: &mut Lcg, depth: usize, out: &mut String) {
    let arms = if depth == 0 { 5 } else { 8 };
    match rng.pick(arms) {
        // Closures with braced bodies inside call arguments.
        0 => out.push_str("let s = v.iter().map(|a| { a + 1 }).filter(|b| { *b > 0 }).count();\n"),
        // Match with braced arms, char-literal braces in the patterns.
        1 => out.push_str(
            "match c { '{' => { n += 1; } '}' => { n -= 1; } b'[' => {} _ => { n ^= 1; } }\n",
        ),
        // Raw string carrying unbalanced braces and quotes as data.
        2 => out.push_str("let r = r#\"{ not a block \" nor a '}' str\"#;\n"),
        // Byte-char braces in a condition.
        3 => out.push_str("if byte == b'{' { open += 1; } else if byte == b'}' { open -= 1; }\n"),
        // Generic turbofish with lifetimes near closing angles.
        4 => out.push_str("let t = parse::<Vec<&'static str>>(input);\n"),
        // Nested plain block.
        5 => {
            out.push_str("{\n");
            let n = 1 + rng.pick(3);
            for _ in 0..n {
                gen_stmt(rng, depth - 1, out);
            }
            out.push_str("}\n");
        }
        // Loop with a labeled break.
        6 => {
            out.push_str("'outer: for i in 0..4 {\n");
            gen_stmt(rng, depth - 1, out);
            out.push_str("if i == 3 { break 'outer; }\n}\n");
        }
        // If/else ladder.
        _ => {
            out.push_str("if x > 0 {\n");
            gen_stmt(rng, depth - 1, out);
            out.push_str("} else {\n");
            gen_stmt(rng, depth - 1, out);
            out.push_str("}\n");
        }
    }
}

fn gen_fn(rng: &mut Lcg, idx: usize) -> String {
    let mut body = String::new();
    let n = 2 + rng.pick(4);
    for _ in 0..n {
        gen_stmt(rng, 3, &mut body);
    }
    format!("fn gen_{idx}<'a>(x: &'a [u8]) -> &'a [u8] {{\n{body}x\n}}\n")
}

#[test]
fn brace_matching_fuzz() {
    let mut rng = Lcg(0x5eed_0002);
    for round in 0..200 {
        let src = gen_fn(&mut rng, round);
        let lexed = lexer::lex(&src);

        // Token-level balance: running depth never dips below zero and
        // ends at zero.
        let mut depth = 0i64;
        for t in &lexed.tokens {
            match t.kind {
                lexer::Tok::P('{') => depth += 1,
                lexer::Tok::P('}') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "negative brace depth in round {round}:\n{src}");
        }
        assert_eq!(depth, 0, "unbalanced braces in round {round}:\n{src}");

        // The model's brace map is a symmetric pairing, and the
        // generated fn's body spans the outermost braces.
        let m = model::build(&lexed);
        for (&open, &close) in &m.braces {
            if open < close {
                assert_eq!(m.braces.get(&close), Some(&open), "round {round}");
                assert!(
                    matches!(lexed.tokens[open].kind, lexer::Tok::P('{')),
                    "round {round}"
                );
                assert!(
                    matches!(lexed.tokens[close].kind, lexer::Tok::P('}')),
                    "round {round}"
                );
            }
        }
        assert_eq!(m.fns.len(), 1, "round {round}:\n{src}");
        let (open, close) = m.fns[0].body;
        assert!(open < close, "round {round}");
        // Every other brace token lies inside the fn body.
        for (i, t) in lexed.tokens.iter().enumerate() {
            if matches!(t.kind, lexer::Tok::P('{') | lexer::Tok::P('}')) {
                assert!(
                    i >= open && i <= close,
                    "brace token outside fn body in round {round}:\n{src}"
                );
            }
        }
    }
}

/// Every real file in this workspace must brace-balance at the token
/// level — shims and all. A single mislexed `'{'` would silently skew
/// every guard span computed from the brace map.
#[test]
fn workspace_files_brace_balance() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let ws = drai_lint::load_workspace(root).expect("load workspace");
    assert!(ws.files.len() > 50, "suspiciously few files scanned");
    for file in &ws.files {
        let mut depth = 0i64;
        for t in &file.lex.tokens {
            match t.kind {
                lexer::Tok::P('{') => depth += 1,
                lexer::Tok::P('}') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "negative brace depth in {}", file.rel);
        }
        assert_eq!(depth, 0, "unbalanced braces in {}", file.rel);
    }
}
