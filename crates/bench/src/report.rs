//! `BENCH_<pr>.json` report model for `drai-bench-report`.
//!
//! A report captures one run of the reduced-size benchmark suite: per
//! bench, the wall time of its `bench.<name>` root span plus a
//! per-stage breakdown aggregated from the trace tree ([`aggregate_by_name`]
//! over the spans recorded under that root). Reports serialize to
//! human-diffable pretty JSON, are committed at the repo root as
//! `BENCH_<pr>.json`, and successive PRs compare against the latest
//! prior file: [`compare`] flags any stage or wall time that regressed
//! beyond a relative threshold (with an absolute floor so nanosecond
//! noise on tiny stages never trips the gate), and [`delta_table`]
//! renders the comparison as the readable table the gate prints before
//! exiting nonzero.
//!
//! The schema is documented in EXPERIMENTS.md ("Bench-report trajectory").

use drai_io::json::Json;
use drai_telemetry::trace::{aggregate_by_name, build_forest};
use drai_telemetry::SpanRecord;
use std::path::{Path, PathBuf};

/// Schema identifier written into every report.
pub const FORMAT: &str = "drai-bench-report/v1";

/// Relative slowdown below which a delta is never a regression.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Absolute floor: wall-time deltas under this many ns are noise.
pub const MIN_WALL_DELTA_NS: u64 = 10_000_000;

/// Absolute floor: per-stage deltas under this many ns are noise.
pub const MIN_STAGE_DELTA_NS: u64 = 5_000_000;

/// One named stage inside a bench, aggregated across the trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Span name (e.g. `pipeline.climate.regrid`).
    pub name: String,
    /// Summed subtree duration of all spans with this name.
    pub total_ns: u64,
    /// Summed self-time (total minus direct children).
    pub self_ns: u64,
    /// Number of spans with this name.
    pub count: u64,
}

/// One bench's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Bench name (`fig1_pipeline`, `table1_climate`, ...).
    pub name: String,
    /// Trace id of the `bench.<name>` root span.
    pub trace: u64,
    /// Duration of the root span.
    pub wall_ns: u64,
    /// Items attributed to the whole trace.
    pub items: u64,
    /// Bytes attributed to the whole trace.
    pub bytes: u64,
    /// Per-span-name breakdown, largest `total_ns` first. The
    /// `bench.<name>` root itself is excluded (it *is* `wall_ns`).
    pub stages: Vec<StageStat>,
}

impl BenchResult {
    /// Build a result from the spans of one bench run. `spans` must
    /// contain exactly one `bench.<name>` root; its trace supplies the
    /// stage breakdown. Items/bytes are summed over the whole tree.
    pub fn from_spans(name: &str, spans: &[SpanRecord]) -> Result<BenchResult, String> {
        let forest = build_forest(spans);
        let root_name = format!("bench.{name}");
        let root = forest
            .iter()
            .find(|n| n.record.name == root_name)
            .ok_or_else(|| format!("no `{root_name}` root span among {} spans", spans.len()))?;
        let agg = aggregate_by_name(std::slice::from_ref(root));
        let mut stages: Vec<StageStat> = agg
            .iter()
            .filter(|(n, _)| n.as_str() != root_name)
            .map(|(n, a)| StageStat {
                name: n.clone(),
                total_ns: a.total_ns,
                self_ns: a.self_ns,
                count: a.count,
            })
            .collect();
        stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        let (items, bytes) = agg
            .values()
            .fold((0u64, 0u64), |(i, b), a| (i + a.items, b + a.bytes));
        Ok(BenchResult {
            name: name.to_string(),
            trace: root.record.trace.as_u64(),
            wall_ns: root.record.dur_ns,
            items,
            bytes,
            stages,
        })
    }

    /// Items per second over the root span.
    pub fn items_per_s(&self) -> f64 {
        self.items as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Bytes per second over the root span.
    pub fn bytes_per_s(&self) -> f64 {
        self.bytes as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// A full `BENCH_<pr>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// PR number the report belongs to (the `<pr>` in the filename).
    pub pr: u64,
    /// `"full"` or `"smoke"`; reports of different modes never compare.
    pub mode: String,
    /// One entry per bench, suite order.
    pub benches: Vec<BenchResult>,
}

impl Report {
    /// Serialize as pretty JSON (2-space indent, stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
        s.push_str(&format!("  \"pr\": {},\n", self.pr));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"benches\": [\n");
        for (bi, b) in self.benches.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", b.name));
            s.push_str(&format!("      \"trace\": {},\n", b.trace));
            s.push_str(&format!("      \"wall_ns\": {},\n", b.wall_ns));
            s.push_str(&format!("      \"items\": {},\n", b.items));
            s.push_str(&format!("      \"bytes\": {},\n", b.bytes));
            s.push_str(&format!("      \"items_per_s\": {:.1},\n", b.items_per_s()));
            s.push_str(&format!("      \"bytes_per_s\": {:.1},\n", b.bytes_per_s()));
            s.push_str("      \"stages\": [\n");
            for (si, st) in b.stages.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"name\": \"{}\", \"total_ns\": {}, \"self_ns\": {}, \"count\": {}}}{}\n",
                    st.name,
                    st.total_ns,
                    st.self_ns,
                    st.count,
                    if si + 1 < b.stages.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if bi + 1 < self.benches.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report; tolerates unknown extra keys, rejects other formats.
    pub fn parse(text: &str) -> Result<Report, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != FORMAT {
            return Err(format!("unsupported format `{format}` (want `{FORMAT}`)"));
        }
        let get_u64 = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer `{k}`"))
        };
        let pr = get_u64(&v, "pr")?;
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("missing `mode`")?
            .to_string();
        let mut benches = Vec::new();
        for b in v.get("benches").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("bench missing `name`")?
                .to_string();
            let mut stages = Vec::new();
            for st in b.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
                stages.push(StageStat {
                    name: st
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("stage missing `name`")?
                        .to_string(),
                    total_ns: get_u64(st, "total_ns")?,
                    self_ns: get_u64(st, "self_ns")?,
                    count: get_u64(st, "count")?,
                });
            }
            benches.push(BenchResult {
                name,
                trace: get_u64(b, "trace")?,
                wall_ns: get_u64(b, "wall_ns")?,
                items: get_u64(b, "items")?,
                bytes: get_u64(b, "bytes")?,
                stages,
            });
        }
        Ok(Report { pr, mode, benches })
    }
}

/// One measured delta between a baseline and a current report.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Bench the delta belongs to.
    pub bench: String,
    /// Stage name, or `None` for the bench's wall time.
    pub stage: Option<String>,
    /// Baseline duration.
    pub baseline_ns: u64,
    /// Current duration.
    pub current_ns: u64,
}

impl Delta {
    /// current/baseline − 1 (positive = slower).
    pub fn ratio(&self) -> f64 {
        self.current_ns as f64 / self.baseline_ns.max(1) as f64 - 1.0
    }

    /// True when this delta trips the gate at `threshold`.
    pub fn is_regression(&self, threshold: f64) -> bool {
        let floor = if self.stage.is_some() {
            MIN_STAGE_DELTA_NS
        } else {
            MIN_WALL_DELTA_NS
        };
        self.current_ns > self.baseline_ns.saturating_add(floor) && self.ratio() > threshold
    }
}

/// Result of comparing two reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every matched (bench, stage) pair, suite order, wall first.
    pub deltas: Vec<Delta>,
    /// Reason the comparison was skipped entirely, if it was.
    pub skipped: Option<String>,
}

impl Comparison {
    /// Deltas that trip the gate at `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.is_regression(threshold))
            .collect()
    }
}

/// Compare `current` against `baseline`. Benches and stages are matched
/// by name; entries present on only one side are ignored (stage sets
/// legitimately drift across PRs). Reports of different modes (smoke vs
/// full) are incomparable and yield a skipped comparison.
pub fn compare(baseline: &Report, current: &Report) -> Comparison {
    if baseline.mode != current.mode {
        return Comparison {
            deltas: Vec::new(),
            skipped: Some(format!(
                "baseline mode `{}` != current mode `{}`",
                baseline.mode, current.mode
            )),
        };
    }
    let mut deltas = Vec::new();
    for cur in &current.benches {
        let Some(base) = baseline.benches.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        deltas.push(Delta {
            bench: cur.name.clone(),
            stage: None,
            baseline_ns: base.wall_ns,
            current_ns: cur.wall_ns,
        });
        for st in &cur.stages {
            let Some(bst) = base.stages.iter().find(|s| s.name == st.name) else {
                continue;
            };
            deltas.push(Delta {
                bench: cur.name.clone(),
                stage: Some(st.name.clone()),
                baseline_ns: bst.total_ns,
                current_ns: st.total_ns,
            });
        }
    }
    Comparison {
        deltas,
        skipped: None,
    }
}

/// Render a comparison as an aligned delta table. Regressions at
/// `threshold` are marked `REGRESSION`; everything else `ok`.
pub fn delta_table(cmp: &Comparison, threshold: f64) -> String {
    if let Some(reason) = &cmp.skipped {
        return format!("comparison skipped: {reason}\n");
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut rows: Vec<[String; 5]> = vec![[
        "bench / stage".into(),
        "baseline ms".into(),
        "current ms".into(),
        "delta".into(),
        "verdict".into(),
    ]];
    for d in &cmp.deltas {
        let label = match &d.stage {
            None => d.bench.clone(),
            Some(s) => format!("{}  {s}", d.bench),
        };
        rows.push([
            label,
            format!("{:.3}", ms(d.baseline_ns)),
            format!("{:.3}", ms(d.current_ns)),
            format!("{:+.1}%", d.ratio() * 100.0),
            if d.is_regression(threshold) {
                "REGRESSION".into()
            } else {
                "ok".into()
            },
        ]);
    }
    let widths: Vec<usize> = (0..5)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let line = format!(
            "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {:<w4$}",
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
            w4 = widths[4],
        );
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 8));
            out.push('\n');
        }
    }
    out
}

/// Default PR number for a fresh report: one past the highest
/// committed `BENCH_<n>.json` in `dir`, or 1 when none exist — so
/// `drai-bench-report` invoked without `--pr` lands the next
/// trajectory point instead of overwriting a stale hard-coded one.
pub fn next_pr(dir: &Path) -> u64 {
    find_baseline(dir, u64::MAX).map_or(1, |(n, _)| n + 1)
}

/// Find the latest prior `BENCH_<n>.json` (largest `n < pr`) in `dir`.
pub fn find_baseline(dir: &Path, pr: u64) -> Option<(u64, PathBuf)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(n) = num.parse::<u64>() else { continue };
        if n < pr && best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_telemetry::{Registry, TraceContext};

    fn sample_report(wall: u64, regrid: u64) -> Report {
        Report {
            pr: 3,
            mode: "full".into(),
            benches: vec![BenchResult {
                name: "table1_climate".into(),
                trace: 1,
                wall_ns: wall,
                items: 1000,
                bytes: 8000,
                stages: vec![
                    StageStat {
                        name: "pipeline.climate.regrid".into(),
                        total_ns: regrid,
                        self_ns: regrid,
                        count: 1,
                    },
                    StageStat {
                        name: "io.shard.write_all".into(),
                        total_ns: 40_000_000,
                        self_ns: 40_000_000,
                        count: 1,
                    },
                ],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report(200_000_000, 100_000_000);
        let parsed = Report::parse(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_other_formats() {
        assert!(Report::parse("{\"format\": \"other/v9\"}").is_err());
        assert!(Report::parse("not json").is_err());
    }

    #[test]
    fn from_spans_derives_stages_from_the_trace() {
        let registry = Registry::new();
        let _scope = TraceContext::root(&registry).attach();
        {
            let root = registry.span("bench.demo");
            let _in_root = root.enter();
            root.add_items(10);
            root.add_bytes(100);
            let stage = registry.span("pipeline.demo.clean");
            let _in_stage = stage.enter();
        }
        let snap = registry.snapshot();
        let result = BenchResult::from_spans("demo", &snap.spans).unwrap();
        assert_eq!(result.items, 10);
        assert_eq!(result.bytes, 100);
        assert_eq!(result.stages.len(), 1);
        assert_eq!(result.stages[0].name, "pipeline.demo.clean");
        assert!(result.wall_ns >= result.stages[0].total_ns);
        assert!(BenchResult::from_spans("absent", &snap.spans).is_err());
    }

    #[test]
    fn injected_regression_is_detected_and_noise_is_not() {
        let baseline = sample_report(200_000_000, 100_000_000);
        // 2.5x slower regrid, wall follows: clear regression at 0.5.
        let slow = sample_report(400_000_000, 250_000_000);
        let cmp = compare(&baseline, &slow);
        let regs = cmp.regressions(DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|d| d.stage.is_none()));
        assert!(regs
            .iter()
            .any(|d| d.stage.as_deref() == Some("pipeline.climate.regrid")));
        // Small absolute wobble on a big ratio stays under the floor.
        let mut noisy = sample_report(201_000_000, 101_000_000);
        noisy.benches[0].stages[0].total_ns = 101_000_000;
        let cmp = compare(&baseline, &noisy);
        assert!(cmp.regressions(DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn mode_mismatch_skips_comparison() {
        let baseline = sample_report(200_000_000, 100_000_000);
        let mut smoke = sample_report(400_000_000, 300_000_000);
        smoke.mode = "smoke".into();
        let cmp = compare(&baseline, &smoke);
        assert!(cmp.skipped.is_some());
        assert!(cmp.regressions(DEFAULT_THRESHOLD).is_empty());
        assert!(delta_table(&cmp, DEFAULT_THRESHOLD).contains("skipped"));
    }

    #[test]
    fn delta_table_is_aligned_and_marks_regressions() {
        let baseline = sample_report(200_000_000, 100_000_000);
        let slow = sample_report(400_000_000, 250_000_000);
        let table = delta_table(&compare(&baseline, &slow), DEFAULT_THRESHOLD);
        assert!(table.contains("bench / stage"));
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("+100.0%"));
        assert!(table.lines().any(|l| l.trim_end().ends_with("ok")));
    }

    #[test]
    fn find_baseline_picks_latest_prior() {
        let dir = std::env::temp_dir().join(format!("drai-bench-base-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for n in [1u64, 3, 4, 7] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        let (n, path) = find_baseline(&dir, 4).unwrap();
        assert_eq!(n, 3);
        assert!(path.ends_with("BENCH_3.json"));
        assert_eq!(find_baseline(&dir, 1), None);
        assert_eq!(find_baseline(&dir, 8).unwrap().0, 7);
        assert_eq!(next_pr(&dir), 8, "one past the highest committed report");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_pr_defaults_to_one_in_an_empty_dir() {
        let dir = std::env::temp_dir().join(format!("drai-bench-nextpr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_pr(&dir), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
