//! # drai-bench
//!
//! Shared workload generators for the benchmark harness. Each bench target
//! under `benches/` regenerates one artifact of the paper (see DESIGN.md's
//! experiment index):
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `fig1_pipeline` | Figure 1 — per-step raw→AI-ready throughput |
//! | `table1_climate` | Table 1 row 1 / §3.1 climate pattern |
//! | `table1_fusion` | Table 1 row 2 / §3.2 fusion pattern |
//! | `table1_bio` | Table 1 row 3 / §3.3 bio pattern |
//! | `table1_materials` | Table 1 row 4 / §3.4 materials pattern |
//! | `table2_maturity` | Table 2 — cost of each readiness-level transition |
//! | `ablation_shard` | shard-size × format sweep |
//! | `ablation_codec` | compression codec sweep |
//! | `ablation_scaling` | thread-count scaling of pipeline stages |
//!
//! Virtual-time experiments that criterion cannot measure (simulated
//! stripe-count scaling on `drai-sim`) live in `src/bin/stripe_scaling.rs`,
//! which prints its series directly.
//!
//! The trace-driven perf-regression gate lives in
//! `src/bin/drai-bench-report.rs` (report model in [`report`]): it
//! re-runs the same workloads at fixed reduced sizes under the
//! hierarchical tracer and compares the committed `BENCH_<pr>.json`
//! trajectory points (see DESIGN.md §8).

#![forbid(unsafe_code)]

pub mod report;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Snapshot the global telemetry registry and persist it next to the
/// criterion output so `scripts/summarize_bench.py` picks both up:
///
/// * `<dir>/telemetry.json` — the full snapshot (counters, gauges,
///   histograms, spans) as one JSON document;
/// * `<dir>/telemetry.jsonl` — the same data, one metric per line;
/// * `<dir>/<metric path>/new/estimates.json` — one criterion-style
///   estimate file per latency histogram, so histogram means appear in
///   the same sweep as the bench timings.
///
/// Returns the paths written. Call at the end of a bench target (or any
/// long-running driver) to dump everything instrumented during the run.
pub fn export_telemetry(dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let snap = drai_telemetry::Registry::global().snapshot();
    let mut written = Vec::new();

    let json_path = dir.join("telemetry.json");
    std::fs::write(&json_path, snap.to_json())?;
    written.push(json_path);

    let jsonl_path = dir.join("telemetry.jsonl");
    std::fs::write(&jsonl_path, snap.to_jsonl())?;
    written.push(jsonl_path);

    let n = drai_telemetry::write_criterion_estimates(&snap, dir)?;
    if n > 0 {
        written.push(dir.to_path_buf());
    }
    Ok(written)
}

/// Deterministic synthetic tabular dataset: `rows` samples × `cols`
/// features with correlated structure, a configurable missing fraction,
/// and a threshold-derived label column. The generic workload for
/// Figure 1's step benchmarks.
pub fn tabular(rows: usize, cols: usize, missing: f64, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let latent = (r as f64 * 0.01).sin() * 3.0 + rng.gen::<f64>();
        for c in 0..cols {
            if rng.gen::<f64>() < missing {
                out.push(f64::NAN);
            } else {
                out.push(latent * (c as f64 + 1.0) * 0.5 + rng.gen::<f64>() * 2.0);
            }
        }
    }
    out
}

/// Smooth science-like f32 payload (partially compressible).
pub fn science_f32(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * 4);
    let mut x: f32 = 250.0;
    for _ in 0..n {
        x += (rng.gen::<f32>() - 0.5) * 0.1;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Monotone timestamp payload (delta-codec friendly).
pub fn timestamps_u64(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * 8);
    let mut t: u64 = 1_700_000_000_000;
    for _ in 0..n {
        t += rng.gen_range(15..25);
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

/// Sparse mask payload (RLE friendly).
pub fn mask_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = vec![0u8; n];
    let mut i = 0;
    while i < n {
        let run = rng.gen_range(50..500).min(n - i);
        let value = (rng.gen::<f64>() < 0.1) as u8;
        for slot in &mut out[i..i + run] {
            *slot = value;
        }
        i += run;
    }
    out
}

/// Fixed-size binary records for shard benches.
pub fn records(count: usize, size: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..size).map(|_| rng.gen()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabular_shape_and_missing() {
        let data = tabular(100, 8, 0.1, 1);
        assert_eq!(data.len(), 800);
        let missing = data.iter().filter(|v| v.is_nan()).count();
        assert!(missing > 20 && missing < 180, "missing {missing}");
        // Deterministic (bitwise — NaN != NaN under float equality).
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&data), bits(&tabular(100, 8, 0.1, 1)));
        assert_ne!(bits(&data), bits(&tabular(100, 8, 0.1, 2)));
    }

    #[test]
    fn payload_generators() {
        assert_eq!(science_f32(100, 1).len(), 400);
        assert_eq!(timestamps_u64(100, 1).len(), 800);
        assert_eq!(mask_bytes(1000, 1).len(), 1000);
        let recs = records(5, 64, 1);
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.len() == 64));
    }

    #[test]
    fn mask_is_rle_friendly() {
        use drai_io::codec::{codec_for, CodecId};
        let mask = mask_bytes(100_000, 3);
        let enc = codec_for(CodecId::Rle).encode(&mask);
        assert!(enc.len() < mask.len() / 10, "rle ratio {}", enc.len());
    }

    #[test]
    fn export_telemetry_writes_snapshot_and_estimates() {
        let registry = drai_telemetry::Registry::global();
        registry.counter("bench.test.counter").incr();
        registry.histogram("bench.test.hist").record(1_000);
        let dir = std::env::temp_dir().join(format!("drai-bench-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = export_telemetry(&dir).unwrap();
        assert!(paths[0].ends_with("telemetry.json") && paths[0].is_file());
        assert!(paths[1].ends_with("telemetry.jsonl") && paths[1].is_file());
        let snap = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(snap.contains("\"bench.test.counter\""));
        assert!(dir.join("bench/test/hist/new/estimates.json").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timestamps_are_delta_friendly() {
        use drai_io::codec::{codec_for, CodecId};
        let ts = timestamps_u64(10_000, 3);
        let enc = codec_for(CodecId::Delta { width: 8 }).encode(&ts);
        assert!(enc.len() < ts.len() / 3, "delta ratio {}", enc.len());
    }
}
