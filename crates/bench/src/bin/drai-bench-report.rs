//! `drai-bench-report` — the trace-driven perf-regression gate.
//!
//! Runs the fig1/table1/table2/ablation workloads at a fixed reduced
//! size, each under a fresh telemetry [`Registry`] with a `bench.<name>`
//! root span, and derives per-stage breakdowns from the recorded trace
//! tree. Writes:
//!
//! * `BENCH_<pr>.json` at the repo root (full mode) — the committed
//!   trajectory point [`drai_bench::report`] models;
//! * per-bench Chrome trace JSON (`<out>/trace/<name>.trace.json`,
//!   loadable in Perfetto / `chrome://tracing`), folded stacks
//!   (`<out>/flame/<name>.folded`, pipe into any flamegraph renderer),
//!   and a combined critical-path summary (`<out>/critical_paths.txt`);
//!
//! then compares against the latest prior `BENCH_<n>.json` at the repo
//! root and exits nonzero with a delta table when any stage regresses
//! beyond the threshold.
//!
//! ```text
//! drai-bench-report [--smoke] [--warn-only] [--pr N] [--out DIR]
//!                   [--threshold F] [--compare-only BASE CUR] [--monitor]
//! ```
//!
//! `--smoke` runs tiny sizes and keeps the report out of the repo root
//! (CI plumbing check); smoke and full reports never compare against
//! each other. `--compare-only` skips the benches and just gates two
//! existing report files (used by the self-test). `--monitor` skips the
//! bench suite and instead runs the monitored streaming climate batch,
//! writing the `drai-monitor/v1` artifact `MONITOR_<pr>.jsonl` next to
//! where `BENCH_<pr>.json` would land (repo root, or `--out` under
//! `--smoke`), self-checks the round-trip, and prints the backpressure
//! diagnosis.

use drai_bench::report::{
    compare, delta_table, find_baseline, next_pr, BenchResult, Report, DEFAULT_THRESHOLD,
};
use drai_bench::{mask_bytes, records, science_f32, tabular, timestamps_u64};
use drai_cache::StageCache;
use drai_core::executor::{ExecutorConfig, StreamingBatchExt};
use drai_core::pipeline::{Pipeline, StageCounters};
use drai_core::ProcessingStage as S;
use drai_domains::cached::Member;
use drai_domains::climate::ClimateData;
use drai_domains::{bio, cached, climate, fusion, materials};
use drai_formats::netcdf::NcFile;
use drai_io::codec::{codec_for, CodecId};
use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};
use drai_io::sink::{MemSink, StorageSink};
use drai_provenance::Ledger;
use drai_sched::{
    scheduler_health_spec, JobOutcome, JobOutput, JobSpec, Priority, Rejected, Scheduler,
    SchedulerConfig, TenantConfig,
};
use drai_telemetry::monitor::ManualClock;
use drai_telemetry::trace::{critical_path_summary, to_chrome_json, to_folded};
use drai_telemetry::{Registry, TraceContext};
use drai_tensor::LatLonGrid;
use drai_transform::features::rolling_mean;
use drai_transform::impute::{impute, Strategy};
use drai_transform::label::threshold_labels;
use drai_transform::normalize::{ColumnNormalizer, Method};
use drai_transform::regrid;
use drai_transform::split::{assign, Fractions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Workload sizes; `smoke` is a plumbing check, `full` a measurement.
struct Sizes {
    rows: usize,
    cols: usize,
    nlat: usize,
    timesteps: usize,
    shots: usize,
    patients: usize,
    tile_len: usize,
    structures: usize,
    shard_records: usize,
    codec_bytes: usize,
    members: usize,
}

impl Sizes {
    fn new(smoke: bool) -> Sizes {
        if smoke {
            Sizes {
                rows: 2_000,
                cols: 8,
                nlat: 12,
                timesteps: 2,
                shots: 2,
                patients: 6,
                tile_len: 32,
                structures: 4,
                shard_records: 64,
                codec_bytes: 32 * 1024,
                members: 2,
            }
        } else {
            Sizes {
                rows: 20_000,
                cols: 16,
                nlat: 48,
                timesteps: 8,
                shots: 8,
                patients: 24,
                tile_len: 128,
                structures: 16,
                shard_records: 512,
                codec_bytes: 256 * 1024,
                members: 4,
            }
        }
    }
}

fn bench_fig1(_registry: &Registry, sz: &Sizes) -> Result<(), String> {
    let cols = sz.cols;
    let raw = tabular(sz.rows, cols, 0.05, 42);
    let pipeline: Pipeline<Vec<f64>> = Pipeline::builder("fig1")
        .stage("clean", S::Preprocess, |mut data: Vec<f64>, c| {
            impute(&mut data, Strategy::Median).map_err(|e| format!("{e}"))?;
            c.bytes = (data.len() * 8) as u64;
            Ok(data)
        })
        .stage(
            "normalize",
            S::Transform,
            move |mut data: Vec<f64>, c: &mut StageCounters| {
                let cn = ColumnNormalizer::fit(Method::ZScore, &data, cols)
                    .map_err(|e| format!("{e}"))?;
                cn.apply(&mut data).map_err(|e| format!("{e}"))?;
                c.bytes = (data.len() * 8) as u64;
                Ok(data)
            },
        )
        .stage("label", S::Transform, move |data: Vec<f64>, c| {
            let col0: Vec<f64> = data.iter().step_by(cols).copied().collect();
            c.records = threshold_labels(&col0, 1.5).len() as u64;
            Ok(data)
        })
        .stage("features", S::Structure, move |data: Vec<f64>, c| {
            for ci in 0..cols {
                let col: Vec<f64> = data.iter().skip(ci).step_by(cols).copied().collect();
                rolling_mean(&col, 9).map_err(|e| format!("{e}"))?;
            }
            c.records = cols as u64;
            Ok(data)
        })
        .stage("split", S::Structure, move |data: Vec<f64>, c| {
            let f = Fractions::standard();
            for r in 0..data.len() / cols {
                assign(&format!("row-{r}"), 7, f).map_err(|e| format!("{e}"))?;
            }
            c.records = (data.len() / cols) as u64;
            Ok(data)
        })
        .stage("shard", S::Shard, move |data: Vec<f64>, c| {
            let recs: Vec<Vec<u8>> = data
                .chunks(cols)
                .map(|row| row.iter().flat_map(|v| v.to_le_bytes()).collect())
                .collect();
            let sink = MemSink::new();
            let manifest = ShardWriter::new(ShardSpec::new("fig1", 1 << 20), &sink)
                .write_all(&recs)
                .map_err(|e| format!("{e}"))?;
            c.records = manifest.total_records;
            c.bytes = manifest.payload_bytes;
            Ok(data)
        })
        .build();
    pipeline.run(raw).map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_climate(sz: &Sizes) -> Result<(), String> {
    let cfg = climate::ClimateConfig {
        src_grid: LatLonGrid::global(sz.nlat, sz.nlat * 2),
        dst_grid: LatLonGrid::global(sz.nlat * 2 / 3, sz.nlat * 4 / 3),
        timesteps: sz.timesteps,
        shard_bytes: 1 << 20,
        ..climate::ClimateConfig::default()
    };
    climate::run(&cfg, Arc::new(MemSink::new())).map_err(|e| format!("{e}"))?;
    Ok(())
}

/// Shared state for the `cache_climate_{cold,warm}` pair: the same
/// input and config measured once against an empty cache (misses +
/// entry writes) and once against a primed cache (pure replay). The
/// BENCH acceptance gate wants warm ≤ 50% of cold.
struct CacheBenchState {
    cfg: climate::ClimateConfig,
    input: ClimateData,
    warm_cache: Arc<StageCache>,
    warm_sink: Arc<dyn StorageSink>,
}

fn climate_cache_cfg(sz: &Sizes) -> climate::ClimateConfig {
    climate::ClimateConfig {
        src_grid: LatLonGrid::global(sz.nlat, sz.nlat * 2),
        dst_grid: LatLonGrid::global(sz.nlat * 2 / 3, sz.nlat * 4 / 3),
        timesteps: sz.timesteps,
        shard_bytes: 1 << 20,
        ..climate::ClimateConfig::default()
    }
}

fn climate_cache_input(cfg: &climate::ClimateConfig) -> Result<ClimateData, String> {
    let raw = MemSink::new();
    let names = climate::generate_raw(cfg, &raw).map_err(|e| format!("{e}"))?;
    let mut fields = Vec::with_capacity(names.len());
    for (vi, name) in names.iter().enumerate() {
        let bytes = raw.read_file(name).map_err(|e| format!("{e}"))?;
        let nc = NcFile::from_bytes(&bytes).map_err(|e| format!("{e}"))?;
        fields.push(
            nc.var(climate::VARIABLES[vi].0)
                .ok_or_else(|| format!("missing variable in {name}"))?
                .data
                .to_f64_vec(),
        );
    }
    Ok(ClimateData {
        fields,
        grid: cfg.src_grid.clone(),
        timesteps: cfg.timesteps,
        normalizers: vec![],
    })
}

fn prepare_cache_bench(sz: &Sizes) -> Result<CacheBenchState, String> {
    let cfg = climate_cache_cfg(sz);
    let input = climate_cache_input(&cfg)?;
    let warm_cache = Arc::new(StageCache::new(Arc::new(MemSink::new()), 256 << 20));
    let warm_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
    // Prime untimed: one cold pass fills the cache and the output sink
    // so the warm bench measures pure cache replay.
    let p = cached::build_cached_climate_pipeline(
        &cfg,
        warm_sink.clone(),
        Arc::new(Ledger::new()),
        warm_cache.clone(),
    );
    p.run(input.clone()).map_err(|e| format!("{e}"))?;
    Ok(CacheBenchState {
        cfg,
        input,
        warm_cache,
        warm_sink,
    })
}

fn bench_cache_cold(st: &CacheBenchState) -> Result<(), String> {
    let cache = Arc::new(StageCache::new(Arc::new(MemSink::new()), 256 << 20));
    let p = cached::build_cached_climate_pipeline(
        &st.cfg,
        Arc::new(MemSink::new()),
        Arc::new(Ledger::new()),
        cache,
    );
    p.run(st.input.clone()).map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_cache_warm(st: &CacheBenchState) -> Result<(), String> {
    let p = cached::build_cached_climate_pipeline(
        &st.cfg,
        st.warm_sink.clone(),
        Arc::new(Ledger::new()),
        st.warm_cache.clone(),
    );
    p.run(st.input.clone()).map_err(|e| format!("{e}"))?;
    Ok(())
}

/// Shared state for the `stream_climate_batch_{cold,warm,rayon}` trio.
/// `cold` and `rayon` run the *same* uncached batch pipeline over the
/// same member-tagged ensemble — streaming executor vs `run_batch`'s
/// whole-batch rayon path, the parity comparison. `warm` runs the
/// cached batch pipeline against a primed cache, so every stage
/// short-circuits its channel hop (fast-path replay).
struct StreamBenchState {
    cfg: climate::ClimateConfig,
    plain_items: Vec<(usize, ClimateData)>,
    cached_items: Vec<Member<ClimateData>>,
    exec: ExecutorConfig,
    warm_cache: Arc<StageCache>,
    warm_sink: Arc<dyn StorageSink>,
}

fn prepare_stream_bench(sz: &Sizes) -> Result<StreamBenchState, String> {
    let cfg = climate_cache_cfg(sz);
    let plain_items: Vec<(usize, ClimateData)> = (0..sz.members)
        .map(|m| (m, climate::member_input(&cfg, m)))
        .collect();
    let cached_items: Vec<Member<ClimateData>> = plain_items
        .iter()
        .map(|(m, d)| Member(*m, d.clone()))
        .collect();
    let exec = ExecutorConfig::for_host();
    let warm_cache = Arc::new(StageCache::new(Arc::new(MemSink::new()), 256 << 20));
    let warm_sink: Arc<dyn StorageSink> = Arc::new(MemSink::new());
    // Prime untimed: one cold streaming pass fills the cache and the
    // output sink so the warm bench measures pure fast-path replay.
    let p = cached::build_cached_climate_batch_pipeline(
        &cfg,
        warm_sink.clone(),
        Arc::new(Ledger::new()),
        warm_cache.clone(),
    );
    p.run_batch_streaming(cached_items.clone(), &exec)
        .map_err(|e| format!("{e}"))?;
    Ok(StreamBenchState {
        cfg,
        plain_items,
        cached_items,
        exec,
        warm_cache,
        warm_sink,
    })
}

fn bench_stream_cold(st: &StreamBenchState) -> Result<(), String> {
    let p =
        climate::build_batch_pipeline(&st.cfg, Arc::new(MemSink::new()), Arc::new(Ledger::new()));
    p.run_batch_streaming(st.plain_items.clone(), &st.exec)
        .map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_stream_warm(st: &StreamBenchState) -> Result<(), String> {
    let p = cached::build_cached_climate_batch_pipeline(
        &st.cfg,
        st.warm_sink.clone(),
        Arc::new(Ledger::new()),
        st.warm_cache.clone(),
    );
    p.run_batch_streaming(st.cached_items.clone(), &st.exec)
        .map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_stream_rayon(st: &StreamBenchState) -> Result<(), String> {
    let p =
        climate::build_batch_pipeline(&st.cfg, Arc::new(MemSink::new()), Arc::new(Ledger::new()));
    p.run_batch(st.plain_items.clone())
        .map_err(|e| format!("{e}"))?;
    Ok(())
}

/// A unit-cost scheduler job doing a small fixed slab of real work, so
/// the `sched.job.<tenant>` spans carry nonzero self time.
fn sched_work_job(tenant: &str, iters: usize) -> JobSpec {
    JobSpec::new(tenant, "bench_work", 1, move |_ctx| {
        let mut acc = 0.0f64;
        for k in 0..iters {
            acc += (k as f64 * 0.001).sin();
        }
        Ok(JobOutput {
            items: 1,
            detail: format!("acc={acc:.3}"),
        })
    })
}

/// Two equal-weight tenants, one job stream each, dispatched by the
/// deficit-round-robin loop on a manual clock: measures pure scheduler
/// overhead plus the per-job span plumbing. The fairness property
/// itself (±1 at every step) is asserted by `tests/sched.rs`; here the
/// bench just keeps the dispatch loop honest under load.
fn bench_sched_fairness(sz: &Sizes) -> Result<(), String> {
    let sched = Scheduler::with_clock(
        SchedulerConfig {
            max_inflight_cost: 1,
            ..SchedulerConfig::default()
        },
        Arc::new(ManualClock::new()),
    );
    sched.register_tenant(TenantConfig::new("alpha"));
    sched.register_tenant(TenantConfig::new("beta"));
    let jobs_per_tenant = sz.members * 8;
    let mut handles = Vec::new();
    for _ in 0..jobs_per_tenant {
        for tenant in ["alpha", "beta"] {
            handles.push(
                sched
                    .submit(sched_work_job(tenant, 20_000))
                    .map_err(|e| format!("{e}"))?,
            );
        }
    }
    let transcript = sched.run_until_idle();
    if transcript.len() != handles.len() {
        return Err(format!(
            "dispatched {} of {} jobs",
            transcript.len(),
            handles.len()
        ));
    }
    for h in handles {
        match h.wait() {
            JobOutcome::Completed(_) => {}
            other => return Err(format!("fairness job did not complete: {other:?}")),
        }
    }
    Ok(())
}

/// Three tenants slam a scheduler configured with tight queues and a
/// low shed watermark: admission control rejects with typed errors,
/// overload sheds lowest-priority-furthest-deadline jobs, and the
/// bench fails if a single submission goes unaccounted for.
fn bench_sched_overload(sz: &Sizes) -> Result<(), String> {
    let sched = Scheduler::with_clock(
        SchedulerConfig {
            max_inflight_cost: 1,
            shed_watermark: 24,
            ..SchedulerConfig::default()
        },
        Arc::new(ManualClock::new()),
    );
    sched.register_tenant(TenantConfig::new("alpha").weight(2).max_queued(16));
    sched.register_tenant(TenantConfig::new("beta").max_queued(16));
    sched.register_tenant(TenantConfig::new("gamma").max_queued(8).cost_quota(64));
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut handles = Vec::new();
    for round in 0..sz.members * 6 {
        for (tenant, priority) in [
            ("alpha", Priority::Interactive),
            ("beta", Priority::Normal),
            ("gamma", Priority::Batch),
        ] {
            submitted += 1;
            let spec = sched_work_job(tenant, 5_000)
                .priority(priority)
                .deadline(std::time::Duration::from_secs(60 + round as u64));
            match sched.submit(spec) {
                Ok(h) => handles.push(h),
                Err(
                    Rejected::Backpressure { .. }
                    | Rejected::QuotaExceeded { .. }
                    | Rejected::DeadlineInfeasible { .. },
                ) => rejected += 1,
            }
        }
    }
    sched.run_until_idle();
    let mut completed = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.wait() {
            JobOutcome::Completed(_) => completed += 1,
            JobOutcome::Shed { .. } => shed += 1,
            other => return Err(format!("unexpected overload outcome: {other:?}")),
        }
    }
    if completed + shed + rejected != submitted {
        return Err(format!(
            "silent drop: {completed} completed + {shed} shed + {rejected} rejected != {submitted} submitted"
        ));
    }
    if rejected == 0 && shed == 0 {
        return Err("overload bench applied no pressure (no rejections, no sheds)".into());
    }
    Ok(())
}

fn bench_fusion(sz: &Sizes) -> Result<(), String> {
    let cfg = fusion::FusionConfig {
        shots: sz.shots,
        shot_seconds: 1.0,
        shard_bytes: 1 << 20,
        ..fusion::FusionConfig::default()
    };
    fusion::run(&cfg, Arc::new(MemSink::new())).map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_bio(sz: &Sizes) -> Result<(), String> {
    let cfg = bio::BioConfig {
        patients: sz.patients,
        tile_len: sz.tile_len,
        ..bio::BioConfig::default()
    };
    bio::run(&cfg, Arc::new(MemSink::new())).map_err(|e| format!("{e}"))?;
    Ok(())
}

fn bench_materials(sz: &Sizes) -> Result<(), String> {
    let cfg = materials::MaterialsConfig {
        structures: sz.structures,
        ..materials::MaterialsConfig::default()
    };
    materials::run(&cfg, Arc::new(MemSink::new())).map_err(|e| format!("{e}"))?;
    Ok(())
}

/// Table 2's readiness ladder, one span per level transition.
fn bench_table2(registry: &Registry, sz: &Sizes) -> Result<(), String> {
    let cols = sz.cols.min(8);
    let rows = sz.rows / 2;
    let mut data = tabular(rows, cols, 0.05, 7);
    {
        let span = registry.span("bench.l1_to_l2");
        let _in = span.enter();
        let nan = data.iter().filter(|v| v.is_nan()).count();
        span.add_items(nan as u64);
        let src = LatLonGrid::global(sz.nlat / 2, sz.nlat);
        let dst = LatLonGrid::global(sz.nlat / 3, sz.nlat * 2 / 3);
        let field: Vec<f64> = (0..src.ncells()).map(|k| (k as f64 * 0.01).sin()).collect();
        for _ in 0..sz.timesteps {
            regrid::bilinear(&src, &field, &dst).map_err(|e| format!("{e}"))?;
        }
    }
    {
        let span = registry.span("bench.l2_to_l3");
        let _in = span.enter();
        impute(&mut data, Strategy::Median).map_err(|e| format!("{e}"))?;
        let cn = ColumnNormalizer::fit(Method::ZScore, &data, cols).map_err(|e| format!("{e}"))?;
        cn.apply(&mut data).map_err(|e| format!("{e}"))?;
        let col0: Vec<f64> = data.iter().step_by(cols).copied().collect();
        span.add_items(threshold_labels(&col0, 1.5).len() as u64);
    }
    {
        let span = registry.span("bench.l3_to_l4");
        let _in = span.enter();
        for ci in 0..cols {
            let col: Vec<f64> = data.iter().skip(ci).step_by(cols).copied().collect();
            rolling_mean(&col, 9).map_err(|e| format!("{e}"))?;
        }
        span.add_items(cols as u64);
    }
    {
        let span = registry.span("bench.l4_to_l5");
        let _in = span.enter();
        let f = Fractions::standard();
        for r in 0..rows {
            assign(&format!("row-{r}"), 7, f).map_err(|e| format!("{e}"))?;
        }
        let recs: Vec<Vec<u8>> = data
            .chunks(cols)
            .map(|row| row.iter().flat_map(|v| v.to_le_bytes()).collect())
            .collect();
        let sink = MemSink::new();
        let manifest = ShardWriter::new(ShardSpec::new("ladder", 1 << 20), &sink)
            .write_all(&recs)
            .map_err(|e| format!("{e}"))?;
        span.add_items(manifest.total_records);
        span.add_bytes(manifest.payload_bytes);
    }
    Ok(())
}

fn bench_ablation_shard(sz: &Sizes) -> Result<(), String> {
    let recs = records(sz.shard_records, 8 * 1024, 9);
    for shard_kib in [256usize, 4096] {
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("s", shard_kib * 1024), &sink)
            .write_all(&recs)
            .map_err(|e| format!("{e}"))?;
        let reader = ShardReader::open("s", &sink).map_err(|e| format!("{e}"))?;
        let back = reader.read_all().map_err(|e| format!("{e}"))?;
        if back.len() != recs.len() {
            return Err(format!("shard round-trip lost records: {}", back.len()));
        }
    }
    Ok(())
}

fn bench_ablation_codec(registry: &Registry, sz: &Sizes) -> Result<(), String> {
    let n = sz.codec_bytes;
    let payloads: Vec<(&str, Vec<u8>, CodecId)> = vec![
        (
            "float_field",
            science_f32(n / 4, 1),
            CodecId::Delta { width: 4 },
        ),
        (
            "timestamps",
            timestamps_u64(n / 8, 2),
            CodecId::Delta { width: 8 },
        ),
        ("mask", mask_bytes(n, 3), CodecId::Rle),
    ];
    for (name, data, structured) in &payloads {
        let span = registry.span(format!("bench.codec_{name}"));
        let _in = span.enter();
        let mut ids = vec![CodecId::Raw, CodecId::Rle, *structured, CodecId::Lz];
        ids.dedup();
        for id in ids {
            let codec = codec_for(id);
            let encoded = codec.encode(data);
            let back = codec.decode(&encoded).map_err(|e| format!("{e}"))?;
            if back != *data {
                return Err(format!("codec {name} round-trip mismatch"));
            }
            span.add_bytes(data.len() as u64);
        }
        span.add_items(1);
    }
    Ok(())
}

/// Run one bench under a fresh registry, export its artifacts, and
/// fold the trace into a [`BenchResult`].
fn run_bench(
    name: &str,
    sz: &Sizes,
    out: &Path,
    f: impl FnOnce(&Registry, &Sizes) -> Result<(), String>,
) -> Result<BenchResult, String> {
    let registry = Registry::new();
    let scope = TraceContext::root(&registry).attach();
    let started = Instant::now();
    {
        let root = registry.span(format!("bench.{name}"));
        let _in_root = root.enter();
        f(&registry, sz)?;
    }
    let wall = started.elapsed();
    drop(scope);
    let snap = registry.snapshot();

    let trace_dir = out.join("trace");
    let flame_dir = out.join("flame");
    std::fs::create_dir_all(&trace_dir).map_err(|e| format!("{e}"))?;
    std::fs::create_dir_all(&flame_dir).map_err(|e| format!("{e}"))?;
    std::fs::write(
        trace_dir.join(format!("{name}.trace.json")),
        to_chrome_json(&snap.spans),
    )
    .map_err(|e| format!("{e}"))?;
    std::fs::write(
        flame_dir.join(format!("{name}.folded")),
        to_folded(&snap.spans),
    )
    .map_err(|e| format!("{e}"))?;
    let summary = critical_path_summary(&snap.spans);
    let mut paths_file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out.join("critical_paths.txt"))
        .map_err(|e| format!("{e}"))?;
    use std::io::Write as _;
    writeln!(paths_file, "== {name} ==\n{summary}").map_err(|e| format!("{e}"))?;

    let result = BenchResult::from_spans(name, &snap.spans)?;
    eprintln!(
        "  {name:<22} {:>8.1} ms  {:>3} stages  {} spans",
        wall.as_secs_f64() * 1e3,
        result.stages.len(),
        snap.spans.len()
    );
    Ok(result)
}

/// One bench workload, boxed so the suite can mix fn items and closures.
type BenchFn = Box<dyn FnOnce(&Registry, &Sizes) -> Result<(), String>>;

struct Args {
    smoke: bool,
    warn_only: bool,
    monitor: bool,
    /// `None` = derive from the highest committed `BENCH_<n>.json` + 1.
    pr: Option<u64>,
    out: PathBuf,
    threshold: f64,
    compare_only: Option<(PathBuf, PathBuf)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        warn_only: false,
        monitor: false,
        pr: None,
        out: PathBuf::from("target/bench-report"),
        threshold: DEFAULT_THRESHOLD,
        compare_only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--warn-only" => args.warn_only = true,
            "--monitor" => args.monitor = true,
            "--pr" => {
                args.pr = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--pr needs an integer")?,
                )
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--threshold" => {
                args.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threshold needs a float")?
            }
            "--compare-only" => {
                let base = it.next().ok_or("--compare-only needs BASE and CURRENT")?;
                let cur = it.next().ok_or("--compare-only needs BASE and CURRENT")?;
                args.compare_only = Some((PathBuf::from(base), PathBuf::from(cur)));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: drai-bench-report [--smoke] [--warn-only] [--monitor] [--pr N] \
                     [--out DIR] [--threshold F] [--compare-only BASE CURRENT]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// `--monitor` mode: run a two-tenant scheduler (alpha at weight 2,
/// beta at weight 1) driving monitored streaming climate batches
/// through the `drai_domains::service` submit helpers, under the
/// combined executor + scheduler health rules. Writes the
/// `drai-monitor/v1` JSONL artifact next to where the BENCH report
/// would land, self-checks the round-trip and the presence of both
/// `executor.*` and `sched.*` series, and prints the diagnosis
/// (including the saturated tenant, when one is named).
fn run_monitor(args: &Args, pr: u64, sz: &Sizes, repo_root: &Path) -> Result<ExitCode, String> {
    use drai_core::executor::executor_health_spec;
    use drai_domains::service;
    use drai_telemetry::monitor::{
        MonitorReport, ProgressTarget, Sampler, SamplerConfig, WallMonitorClock,
    };
    use std::time::Duration;

    let registry = Registry::new();
    let scope = TraceContext::root(&registry).attach();
    let cfg = climate_cache_cfg(sz);
    let exec = ExecutorConfig::for_host();
    let scfg = SchedulerConfig {
        exec: exec.clone(),
        ..SchedulerConfig::default()
    };

    // One spec, two subsystems: executor backpressure rules plus the
    // scheduler's overload/stall rules.
    let mut spec = executor_health_spec(&exec, 4);
    for r in scheduler_health_spec(&scfg).rules() {
        spec = spec.rule(&r.name, &r.metric, r.cond);
    }

    let sched = Arc::new(Scheduler::new(scfg));
    sched.register_tenant(TenantConfig::new("alpha").weight(2));
    sched.register_tenant(TenantConfig::new("beta"));

    // Two climate-batch jobs per tenant; progress tracks ensemble
    // members flowing through the streaming executor across all jobs.
    let jobs_per_tenant = 2usize;
    let total_items = (2 * jobs_per_tenant * sz.members) as u64;
    let mut sampler = Sampler::new(
        &registry,
        Arc::new(WallMonitorClock::new()),
        SamplerConfig {
            capacity: 1024,
            progress: Some(ProgressTarget {
                counter: "executor.items_completed".to_string(),
                total: total_items,
            }),
        },
        spec,
    );
    if !args.smoke {
        sampler = sampler.with_observer(|tick| {
            if let Some(p) = tick.progress {
                eprintln!("[sched-service] {}", p.render());
            }
        });
    }
    let handle = sampler.start(Duration::from_millis(5));

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..jobs_per_tenant {
        for tenant in ["alpha", "beta"] {
            handles.push(
                service::submit_climate_batch(
                    &sched,
                    tenant,
                    &cfg,
                    Arc::new(MemSink::new()),
                    sz.members,
                )
                .map_err(|e| format!("{e}"))?,
            );
        }
    }
    let pool = sched.start_workers(2);
    let jobs = handles.len();
    for h in handles {
        match h.wait() {
            JobOutcome::Completed(_) => {}
            other => return Err(format!("monitored job did not complete: {other:?}")),
        }
    }
    sched.shutdown();
    pool.join();
    let wall = started.elapsed();
    let report = handle.stop();
    drop(scope);
    eprintln!(
        "  monitored scheduler run: {jobs} jobs x {} members, 2 tenants, {:.1} ms, {} samples",
        sz.members,
        wall.as_secs_f64() * 1e3,
        report.ticks
    );

    let text = report.to_jsonl();
    // Self-check before writing: the artifact must parse back
    // byte-identically and carry both executor and scheduler series.
    let parsed = MonitorReport::parse_jsonl(&text)?;
    if parsed.to_jsonl() != text {
        return Err("monitor artifact did not round-trip byte-identically".into());
    }
    if !parsed
        .series
        .iter()
        .any(|s| s.name.starts_with("executor."))
    {
        return Err("monitor artifact has no executor.* series".into());
    }
    if !parsed.series.iter().any(|s| s.name.starts_with("sched.")) {
        return Err("monitor artifact has no sched.* series".into());
    }

    let path = if args.smoke {
        args.out.join(format!("MONITOR_{pr}.jsonl"))
    } else {
        repo_root.join(format!("MONITOR_{pr}.jsonl"))
    };
    std::fs::write(&path, &text).map_err(|e| format!("{e}"))?;
    eprintln!("wrote {}", path.display());
    print!("{}", parsed.diagnose().render());
    Ok(ExitCode::SUCCESS)
}

/// Gate a comparison: print the table, return the exit code.
fn gate(baseline: &Report, current: &Report, threshold: f64, warn_only: bool) -> ExitCode {
    let cmp = compare(baseline, current);
    print!("{}", delta_table(&cmp, threshold));
    let regressions = cmp.regressions(threshold);
    if regressions.is_empty() {
        println!("no regressions beyond {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    } else {
        println!(
            "{} regression(s) beyond {:.0}% vs PR {} baseline",
            regressions.len(),
            threshold * 100.0,
            baseline.pr
        );
        if warn_only {
            println!("--warn-only: not failing");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if let Some((base_path, cur_path)) = &args.compare_only {
        let baseline =
            Report::parse(&std::fs::read_to_string(base_path).map_err(|e| format!("{e}"))?)?;
        let current =
            Report::parse(&std::fs::read_to_string(cur_path).map_err(|e| format!("{e}"))?)?;
        return Ok(gate(&baseline, &current, args.threshold, args.warn_only));
    }

    let sz = Sizes::new(args.smoke);
    // Repo root = two levels above this crate's manifest.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .ok_or("cannot locate repo root")?
        .to_path_buf();
    // No --pr: land one past the highest committed BENCH_<n>.json.
    let pr = args.pr.unwrap_or_else(|| next_pr(&repo_root));

    if args.monitor {
        std::fs::create_dir_all(&args.out).map_err(|e| format!("{e}"))?;
        eprintln!("drai-bench-report: mode=monitor pr={pr}");
        return run_monitor(&args, pr, &sz, &repo_root);
    }

    let mode = if args.smoke { "smoke" } else { "full" };
    std::fs::create_dir_all(&args.out).map_err(|e| format!("{e}"))?;
    let _ = std::fs::remove_file(args.out.join("critical_paths.txt"));
    eprintln!("drai-bench-report: mode={mode} pr={pr}");

    let cache_state = Arc::new(prepare_cache_bench(&sz)?);
    let cold_state = cache_state.clone();
    let warm_state = cache_state;
    let stream_state = Arc::new(prepare_stream_bench(&sz)?);
    let stream_cold = stream_state.clone();
    let stream_warm = stream_state.clone();
    let stream_rayon = stream_state;

    let benches: Vec<(&str, BenchFn)> = vec![
        ("fig1_pipeline", Box::new(bench_fig1)),
        (
            "table1_climate",
            Box::new(|_: &Registry, s: &Sizes| bench_climate(s)),
        ),
        (
            "cache_climate_cold",
            Box::new(move |_: &Registry, _: &Sizes| bench_cache_cold(&cold_state)),
        ),
        (
            "cache_climate_warm",
            Box::new(move |_: &Registry, _: &Sizes| bench_cache_warm(&warm_state)),
        ),
        (
            "stream_climate_batch_cold",
            Box::new(move |_: &Registry, _: &Sizes| bench_stream_cold(&stream_cold)),
        ),
        (
            "stream_climate_batch_warm",
            Box::new(move |_: &Registry, _: &Sizes| bench_stream_warm(&stream_warm)),
        ),
        (
            "stream_climate_batch_rayon",
            Box::new(move |_: &Registry, _: &Sizes| bench_stream_rayon(&stream_rayon)),
        ),
        (
            "sched_fairness",
            Box::new(|_: &Registry, s: &Sizes| bench_sched_fairness(s)),
        ),
        (
            "sched_overload",
            Box::new(|_: &Registry, s: &Sizes| bench_sched_overload(s)),
        ),
        (
            "table1_fusion",
            Box::new(|_: &Registry, s: &Sizes| bench_fusion(s)),
        ),
        (
            "table1_bio",
            Box::new(|_: &Registry, s: &Sizes| bench_bio(s)),
        ),
        (
            "table1_materials",
            Box::new(|_: &Registry, s: &Sizes| bench_materials(s)),
        ),
        ("table2_maturity", Box::new(bench_table2)),
        (
            "ablation_shard",
            Box::new(|_: &Registry, s: &Sizes| bench_ablation_shard(s)),
        ),
        ("ablation_codec", Box::new(bench_ablation_codec)),
    ];
    let mut results = Vec::new();
    for (name, f) in benches {
        results.push(run_bench(name, &sz, &args.out, f)?);
    }
    let report = Report {
        pr,
        mode: mode.to_string(),
        benches: results,
    };

    let json = report.to_json();
    let report_path = if args.smoke {
        args.out.join(format!("BENCH_{pr}.json"))
    } else {
        repo_root.join(format!("BENCH_{pr}.json"))
    };
    std::fs::write(&report_path, &json).map_err(|e| format!("{e}"))?;
    eprintln!("wrote {}", report_path.display());

    match find_baseline(&repo_root, pr) {
        None => {
            println!("no prior BENCH_<n>.json baseline (n < {pr}); nothing to compare");
            Ok(ExitCode::SUCCESS)
        }
        Some((n, path)) => {
            let baseline =
                Report::parse(&std::fs::read_to_string(&path).map_err(|e| format!("{e}"))?)?;
            println!("comparing against BENCH_{n}.json:");
            Ok(gate(&baseline, &report, args.threshold, args.warn_only))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("drai-bench-report: error: {e}");
            ExitCode::from(2)
        }
    }
}
