//! ABL-SCALE (storage half): simulated stripe-count and OST scaling on
//! the Lustre-like model in `drai-sim`.
//!
//! These results are *virtual-time* — the whole point of the simulator is
//! to show scaling shapes a laptop's single disk cannot exhibit — so they
//! are printed as a table rather than measured by criterion.
//!
//! ```sh
//! cargo run --release -p drai-bench --bin stripe_scaling
//! ```

use drai_bench::records;
use drai_io::shard::{ShardSpec, ShardWriter};
use drai_sim::{SimConfig, SimFs};

fn main() {
    let recs = records(512, 64 * 1024, 7); // 32 MiB payload
    let payload: u64 = recs.iter().map(|r| r.len() as u64).sum();

    println!("simulated striped parallel filesystem (per-OST 1 GB/s, 0.5 ms latency)");
    println!("payload: {} MiB of shard data\n", payload >> 20);

    // Sweep 1: stripe count on a 64-OST system.
    println!("stripe-count sweep (64 OSTs, 4 MiB shards):");
    println!(
        "{:>8} {:>14} {:>16}",
        "stripes", "makespan (ms)", "agg BW (GB/s)"
    );
    let mut baseline = None;
    for stripe_count in [1usize, 2, 4, 8, 16, 32, 64] {
        let fs = SimFs::new(SimConfig {
            ost_count: 64,
            stripe_count,
            ..SimConfig::default()
        })
        .expect("valid sim config");
        ShardWriter::new(ShardSpec::new("sweep", 4 << 20), &fs)
            .write_all(&recs)
            .expect("sim shard write");
        let makespan = fs.makespan();
        let bw = fs.achieved_bandwidth() / 1e9;
        let speedup = baseline.get_or_insert(makespan);
        println!(
            "{stripe_count:>8} {:>14.3} {:>16.2}   ({:.1}x)",
            makespan * 1e3,
            bw,
            *speedup / makespan
        );
    }

    // Sweep 2: OST count at full-width striping (system scaling).
    println!("\nOST-count sweep (stripe over all OSTs):");
    println!(
        "{:>8} {:>14} {:>16}",
        "OSTs", "makespan (ms)", "agg BW (GB/s)"
    );
    for ost_count in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let fs = SimFs::new(SimConfig {
            ost_count,
            stripe_count: ost_count,
            ..SimConfig::default()
        })
        .expect("valid sim config");
        ShardWriter::new(ShardSpec::new("sweep", 4 << 20), &fs)
            .write_all(&recs)
            .expect("sim shard write");
        println!(
            "{ost_count:>8} {:>14.3} {:>16.2}",
            fs.makespan() * 1e3,
            fs.achieved_bandwidth() / 1e9
        );
    }

    // Sweep 3: shard size vs latency-dominated small files.
    println!("\nshard-size sweep (8 OSTs, stripe 4, latency 0.5 ms/op):");
    println!(
        "{:>12} {:>8} {:>14} {:>16}",
        "shard size", "files", "makespan (ms)", "agg BW (GB/s)"
    );
    for shard_kib in [64usize, 256, 1024, 4096, 16384] {
        let fs = SimFs::new(SimConfig::default()).expect("valid sim config");
        let manifest = ShardWriter::new(ShardSpec::new("sweep", shard_kib * 1024), &fs)
            .write_all(&recs)
            .expect("sim shard write");
        println!(
            "{:>10}Ki {:>8} {:>14.3} {:>16.2}",
            shard_kib,
            manifest.shards.len(),
            fs.makespan() * 1e3,
            fs.achieved_bandwidth() / 1e9
        );
    }

    // Every shard write above ran through the instrumented I/O stack;
    // persist the telemetry snapshot next to the criterion results so
    // `scripts/summarize_bench.py` sweeps both.
    let out = std::path::Path::new("target/criterion/telemetry");
    match drai_bench::export_telemetry(out) {
        Ok(paths) => println!("\ntelemetry exported to {}", paths[0].display()),
        Err(e) => eprintln!("\ntelemetry export failed: {e}"),
    }
}
