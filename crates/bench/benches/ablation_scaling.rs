//! ABL-SCALE — parallel scaling of the preprocessing stages.
//!
//! §4's guiding principles call for "alignment with HPC infrastructure
//! for parallel training". This bench sweeps rayon thread counts over the
//! batch pipeline and the prefetching reader to show the scaling shape
//! (near-linear until memory-bandwidth/IO bound). The simulated
//! stripe-count scaling (virtual time, not wall time) is produced by the
//! `stripe_scaling` binary instead — criterion can only measure wall
//! clocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_core::pipeline::Pipeline;
use drai_core::readiness::ProcessingStage;
use drai_io::parallel::prefetch_map;
use drai_transform::normalize::{Method, Normalizer};
use std::time::Duration;

fn heavy_stage(data: Vec<f64>) -> Vec<f64> {
    // Representative per-sample preprocessing cost: fit + apply + a
    // couple of passes.
    let n = Normalizer::fit(Method::ZScore, &data).unwrap();
    let mut out = data;
    n.apply_slice(&mut out);
    for v in &mut out {
        *v = v.tanh();
    }
    out
}

fn bench_thread_scaling(c: &mut Criterion) {
    let items: Vec<Vec<f64>> = (0..256)
        .map(|i| (0..20_000).map(|k| ((i * k) as f64).sin()).collect())
        .collect();
    let total_elems: u64 = items.iter().map(|v| v.len() as u64).sum();

    let mut group = c.benchmark_group("ablation_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(total_elems));

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut threads = vec![1usize, 2];
    let mut t = 4;
    while t <= max_threads {
        threads.push(t);
        t *= 2;
    }

    for &nt in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .expect("thread pool");
        let pipeline: Pipeline<Vec<f64>> = Pipeline::builder("scaling")
            .stage("normalize", ProcessingStage::Transform, |v: Vec<f64>, c| {
                c.records = 1;
                Ok(heavy_stage(v))
            })
            .build();
        group.bench_function(BenchmarkId::new("pipeline-batch", nt), |b| {
            b.iter_batched(
                || items.clone(),
                |batch| pool.install(|| pipeline.run_batch(batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // Prefetch reader scaling (worker threads hiding per-item latency).
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("prefetch-map", workers), |b| {
            b.iter_batched(
                || items.clone(),
                |batch| prefetch_map(batch, workers, 4, heavy_stage).collect::<Vec<_>>(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
