//! T1-CLIMATE — Table 1 row 1 / §3.1: the climate archetype's
//! `download → regrid → normalize → shard` pattern, per stage and
//! end-to-end, with a grid-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_domains::climate::{self, ClimateConfig};
use drai_io::sink::MemSink;
use drai_tensor::LatLonGrid;
use drai_transform::normalize::{Method, Normalizer};
use drai_transform::regrid;
use std::sync::Arc;
use std::time::Duration;

fn cfg(nlat: usize) -> ClimateConfig {
    ClimateConfig {
        src_grid: LatLonGrid::global(nlat, nlat * 2),
        dst_grid: LatLonGrid::global(nlat * 2 / 3, nlat * 4 / 3),
        timesteps: 8,
        shard_bytes: 1 << 20,
        ..ClimateConfig::default()
    }
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_climate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));

    for nlat in [24usize, 48] {
        let config = cfg(nlat);
        let src = config.src_grid.clone();
        let dst = config.dst_grid.clone();
        let field: Vec<f64> = (0..src.ncells())
            .map(|k| ((k % src.nlon()) as f64 * 0.1).sin() + (k / src.nlon()) as f64 * 0.01)
            .collect();
        group.throughput(Throughput::Elements(src.ncells() as u64));

        group.bench_function(BenchmarkId::new("regrid-bilinear", nlat), |b| {
            b.iter(|| regrid::bilinear(&src, &field, &dst).unwrap())
        });
        group.bench_function(BenchmarkId::new("regrid-conservative", nlat), |b| {
            b.iter(|| regrid::conservative(&src, &field, &dst).unwrap())
        });
        group.bench_function(BenchmarkId::new("normalize", nlat), |b| {
            b.iter_batched(
                || field.clone(),
                |mut data| {
                    let n = Normalizer::fit(Method::ZScore, &data).unwrap();
                    n.apply_slice(&mut data);
                    data
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("end-to-end", nlat), |b| {
            b.iter(|| {
                let sink = Arc::new(MemSink::new());
                climate::run(&config, sink).unwrap()
            })
        });

        // Per-pipeline-stage wall time, reported once per sweep point via
        // the pipeline's own metrics (criterion measures end-to-end; the
        // stage breakdown is the paper-facing table).
        let sink = Arc::new(MemSink::new());
        climate::generate_raw(&config, sink.as_ref()).unwrap();
        let run = climate::run(&config, Arc::new(MemSink::new())).unwrap();
        eprintln!("\n[table1_climate] nlat={nlat} stage breakdown:");
        for s in &run.stages {
            eprintln!(
                "  {:<10} {:>10.3} ms  {:>9.2} MiB/s",
                s.name,
                s.throughput.elapsed.as_secs_f64() * 1e3,
                s.throughput.mib_per_sec()
            );
        }
        let _ = &sink;
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
