//! ABL-CODEC — compression codec sweep over the three payload shapes
//! scientific shards actually contain: near-incompressible float fields,
//! monotone timestamps, and sparse masks.
//!
//! The paper (§2.2) notes science data demands full 32/64-bit precision —
//! which is why general-purpose compression often loses to `raw` on float
//! payloads while structured codecs win big on indices and masks. This
//! bench produces that crossover table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_bench::{mask_bytes, science_f32, timestamps_u64};
use drai_io::codec::{codec_for, CodecId};
use std::time::Duration;

fn bench_codecs(c: &mut Criterion) {
    let n = 256 * 1024;
    let payloads: Vec<(&str, Vec<u8>, CodecId)> = vec![
        (
            "float-field",
            science_f32(n / 4, 1),
            CodecId::Delta { width: 4 },
        ),
        (
            "timestamps",
            timestamps_u64(n / 8, 2),
            CodecId::Delta { width: 8 },
        ),
        ("mask", mask_bytes(n, 3), CodecId::Rle),
    ];

    let mut group = c.benchmark_group("ablation_codec");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));

    eprintln!("\n[ablation_codec] compression ratios (encoded/original):");
    for (name, data, structured) in &payloads {
        group.throughput(Throughput::Bytes(data.len() as u64));
        let mut ids = vec![CodecId::Raw, CodecId::Rle, *structured, CodecId::Lz];
        ids.dedup();
        for id in ids {
            let codec = codec_for(id);
            group.bench_function(
                BenchmarkId::new(format!("encode-{name}"), codec.id().name()),
                |b| b.iter(|| codec.encode(data)),
            );
            let encoded = codec.encode(data);
            group.bench_function(
                BenchmarkId::new(format!("decode-{name}"), codec.id().name()),
                |b| b.iter(|| codec.decode(&encoded).unwrap()),
            );
            eprintln!(
                "  {name:<12} {:<8} {:>6.3}",
                codec.id().name(),
                encoded.len() as f64 / data.len() as f64
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
