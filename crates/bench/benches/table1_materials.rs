//! T1-MATERIALS — Table 1 row 4 / §3.4: the materials archetype's
//! `parse → normalize → encode → shard` pattern, with a structure-count
//! sweep and the neighbor-search kernel isolated (cell list vs brute
//! force — the O(N) vs O(N²) ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_domains::materials::{self, neighbor_pairs, MaterialsConfig};
use drai_formats::xyz::parse_xyz;
use drai_io::sink::{MemSink, StorageSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn brute_force_pairs(positions: &[[f64; 3]], cutoff: f64) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let c2 = cutoff * cutoff;
    for a in 0..positions.len() {
        for b in a + 1..positions.len() {
            let d2: f64 = (0..3)
                .map(|c| (positions[a][c] - positions[b][c]).powi(2))
                .sum();
            if d2 <= c2 {
                out.push((a, b, d2.sqrt()));
            }
        }
    }
    out
}

fn bench_materials(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_materials");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));

    // Neighbor search: cell list vs brute force, growing N.
    let mut rng = SmallRng::seed_from_u64(3);
    for n in [256usize, 1024, 4096] {
        let side = (n as f64).cbrt() * 2.7;
        let positions: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen::<f64>() * side,
                    rng.gen::<f64>() * side,
                    rng.gen::<f64>() * side,
                ]
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("neighbors-celllist", n), |b| {
            b.iter(|| neighbor_pairs(&positions, 3.2))
        });
        if n <= 1024 {
            group.bench_function(BenchmarkId::new("neighbors-bruteforce", n), |b| {
                b.iter(|| brute_force_pairs(&positions, 3.2))
            });
        }
    }

    // XYZ parse throughput.
    let cfg = MaterialsConfig {
        structures: 64,
        cell_atoms: 3,
        ..MaterialsConfig::default()
    };
    let sink = MemSink::new();
    materials::generate_raw(&cfg, &sink).unwrap();
    let xyz_bytes = sink.read_file("raw/structures.xyz").unwrap();
    let xyz_text = String::from_utf8(xyz_bytes).unwrap();
    group.throughput(Throughput::Bytes(xyz_text.len() as u64));
    group.bench_function("parse-xyz", |b| b.iter(|| parse_xyz(&xyz_text).unwrap()));

    // End-to-end sweep.
    for structures in [16usize, 48] {
        let config = MaterialsConfig {
            structures,
            cell_atoms: 3,
            ..MaterialsConfig::default()
        };
        group.throughput(Throughput::Elements(structures as u64));
        group.bench_function(BenchmarkId::new("end-to-end", structures), |b| {
            b.iter(|| {
                let sink = Arc::new(MemSink::new());
                materials::run(&config, sink).unwrap()
            })
        });
    }

    // Stage breakdown.
    let run = materials::run(&cfg, Arc::new(MemSink::new())).unwrap();
    eprintln!("\n[table1_materials] structures=64 stage breakdown:");
    for s in &run.stages {
        eprintln!(
            "  {:<10} {:>10.3} ms  {:>6} records",
            s.name,
            s.throughput.elapsed.as_secs_f64() * 1e3,
            s.throughput.records
        );
    }
    group.finish();
}

criterion_group!(benches, bench_materials);
criterion_main!(benches);
