//! T1-FUSION — Table 1 row 2 / §3.2: the fusion archetype's
//! `extract → align → normalize → shard` pattern, with a shot-count sweep
//! and isolated align/window kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_domains::fusion::{self, FusionConfig, ShotStore};
use drai_io::sink::MemSink;
use drai_transform::align::{align_channels, window, Clock};
use std::sync::Arc;
use std::time::Duration;

fn cfg(shots: usize) -> FusionConfig {
    FusionConfig {
        shots,
        shot_seconds: 1.0,
        clock_hz: 1_000.0,
        window_len: 64,
        window_stride: 32,
        shard_bytes: 1 << 20,
        ..FusionConfig::default()
    }
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_fusion");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));

    // Kernel benches on one representative shot.
    let store = ShotStore::generate(&cfg(4));
    let shot = store
        .shots()
        .iter()
        .find(|s| s.channels.len() == fusion::CHANNELS.len())
        .expect("full shot");
    let samples: usize = shot.channels.iter().map(|ch| ch.values.len()).sum();
    group.throughput(Throughput::Elements(samples as u64));
    let clock = Clock::covering(0.01, 0.99, 1_000.0).unwrap();
    group.bench_function("align-multirate", |b| {
        b.iter(|| align_channels(&shot.channels, &clock).unwrap())
    });

    let (matrix, names) = align_channels(&shot.channels, &clock).unwrap();
    group.bench_function("window-slice", |b| {
        b.iter(|| window(&matrix, names.len(), 64, 32, true).unwrap())
    });

    // End-to-end sweep over shot counts.
    for shots in [8usize, 16, 32] {
        let config = cfg(shots);
        group.throughput(Throughput::Elements(shots as u64));
        group.bench_function(BenchmarkId::new("end-to-end", shots), |b| {
            b.iter(|| {
                let sink = Arc::new(MemSink::new());
                fusion::run(&config, sink).unwrap()
            })
        });
    }

    // Stage breakdown for the paper-facing table.
    let run = fusion::run(&cfg(16), Arc::new(MemSink::new())).unwrap();
    eprintln!("\n[table1_fusion] shots=16 stage breakdown:");
    for s in &run.stages {
        eprintln!(
            "  {:<10} {:>10.3} ms  {:>8} records",
            s.name,
            s.throughput.elapsed.as_secs_f64() * 1e3,
            s.throughput.records
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
