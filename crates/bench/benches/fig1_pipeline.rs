//! FIG1 — Figure 1's generic raw→AI-ready steps, benchmarked per step.
//!
//! The paper's Figure 1 names the canonical sequence: handle missing
//! values → normalize → label → feature-engineer → split → shard. This
//! bench measures each step's throughput on the same synthetic
//! multivariate tabular workload, producing the per-stage cost profile
//! the figure implies but never quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_bench::tabular;
use drai_io::shard::{ShardSpec, ShardWriter};
use drai_io::sink::MemSink;
use drai_transform::features::rolling_mean;
use drai_transform::impute::{impute, Strategy};
use drai_transform::label::threshold_labels;
use drai_transform::normalize::{ColumnNormalizer, Method};
use drai_transform::split::{assign, Fractions};
use std::time::Duration;

const COLS: usize = 16;

fn bench_steps(c: &mut Criterion) {
    let rows = 50_000;
    let raw = tabular(rows, COLS, 0.05, 42);
    let bytes = (raw.len() * 8) as u64;

    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function(BenchmarkId::new("step", "clean-impute"), |b| {
        b.iter_batched(
            || raw.clone(),
            |mut data| {
                impute(&mut data, Strategy::Median).unwrap();
                data
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Pre-impute once for the downstream steps.
    let mut clean = raw.clone();
    impute(&mut clean, Strategy::Median).unwrap();

    group.bench_function(BenchmarkId::new("step", "normalize"), |b| {
        b.iter_batched(
            || clean.clone(),
            |mut data| {
                let cn = ColumnNormalizer::fit(Method::ZScore, &data, COLS).unwrap();
                cn.apply(&mut data).unwrap();
                data
            },
            criterion::BatchSize::LargeInput,
        )
    });

    let col0: Vec<f64> = clean.iter().step_by(COLS).copied().collect();
    group.bench_function(BenchmarkId::new("step", "label"), |b| {
        b.iter(|| threshold_labels(&col0, 1.5))
    });

    group.bench_function(BenchmarkId::new("step", "feature-engineer"), |b| {
        b.iter(|| {
            let mut features = Vec::with_capacity(COLS);
            for ci in 0..COLS {
                let col: Vec<f64> = clean.iter().skip(ci).step_by(COLS).copied().collect();
                features.push(rolling_mean(&col, 9).unwrap());
            }
            features
        })
    });

    group.bench_function(BenchmarkId::new("step", "split"), |b| {
        b.iter(|| {
            let f = Fractions::standard();
            (0..rows)
                .map(|r| assign(&format!("row-{r}"), 7, f).unwrap())
                .collect::<Vec<_>>()
        })
    });

    // Shard: rows become fixed-size records.
    let records: Vec<Vec<u8>> = clean
        .chunks(COLS)
        .map(|row| {
            let mut rec = Vec::with_capacity(COLS * 8);
            for v in row {
                rec.extend_from_slice(&v.to_le_bytes());
            }
            rec
        })
        .collect();
    group.bench_function(BenchmarkId::new("step", "shard"), |b| {
        b.iter(|| {
            let sink = MemSink::new();
            ShardWriter::new(ShardSpec::new("fig1", 1 << 20), &sink)
                .write_all(&records)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
