//! ABL-SHARD — shard-size × format sweep.
//!
//! §2.1 motivates "sharded storage in binary formats such as HDF5, ADIOS,
//! or TFRecords" for scalable ingestion. This bench quantifies the two
//! design choices: target shard size (too small → per-file overhead
//! dominates; too large → no parallelism) and container format
//! (NPZ/TFRecord/h5lite/BP) at fixed payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_bench::records;
use drai_formats::bp::{BpVar, BpWriter, ProcessGroup};
use drai_formats::h5lite::{Dataset as H5Dataset, H5File};
use drai_formats::tfrecord::write_records;
use drai_formats::zip::{write_zip, ZipEntry};
use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};
use drai_io::sink::MemSink;
use drai_tensor::{DType, Tensor};
use std::time::Duration;

fn bench_shard_size(c: &mut Criterion) {
    let recs = records(2_000, 8 * 1024, 9); // 16 MiB payload
    let payload: u64 = recs.iter().map(|r| r.len() as u64).sum();

    let mut group = c.benchmark_group("ablation_shard_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(payload));
    for shard_kib in [64usize, 512, 4096, 16_384] {
        group.bench_function(BenchmarkId::new("write", format!("{shard_kib}KiB")), |b| {
            b.iter(|| {
                let sink = MemSink::new();
                ShardWriter::new(ShardSpec::new("s", shard_kib * 1024), &sink)
                    .write_all(&recs)
                    .unwrap()
            })
        });
        // Read path at the same size.
        let sink = MemSink::new();
        ShardWriter::new(ShardSpec::new("s", shard_kib * 1024), &sink)
            .write_all(&recs)
            .unwrap();
        group.bench_function(BenchmarkId::new("read", format!("{shard_kib}KiB")), |b| {
            b.iter(|| {
                let reader = ShardReader::open("s", &sink).unwrap();
                reader.read_all().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    // Same logical payload — 256 records of 64×64 f32 — through each
    // container format's write path.
    let tensors: Vec<Tensor<f32>> = (0..256)
        .map(|i| Tensor::from_fn(&[64, 64], move |k| (i * k) as f32 * 0.001))
        .collect();
    let payload: u64 = tensors.iter().map(|t| (t.len() * 4) as u64).sum();

    let mut group = c.benchmark_group("ablation_format");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(payload));

    group.bench_function("npz", |b| {
        b.iter(|| {
            let entries: Vec<ZipEntry> = tensors
                .iter()
                .enumerate()
                .map(|(i, t)| ZipEntry {
                    name: format!("r{i}.npy"),
                    data: drai_formats::npy::write_npy(t),
                })
                .collect();
            write_zip(&entries).unwrap()
        })
    });

    group.bench_function("tfrecord", |b| {
        b.iter(|| {
            write_records(tensors.iter().map(|t| {
                drai_formats::example::Example::new()
                    .with_floats("x", t.as_slice().to_vec())
                    .encode()
            }))
        })
    });

    group.bench_function("h5lite", |b| {
        b.iter(|| {
            let mut f = H5File::new();
            for (i, t) in tensors.iter().enumerate() {
                f.put_dataset(&format!("/r{i}"), H5Dataset::from_tensor(t, 16))
                    .unwrap();
            }
            f.to_bytes()
        })
    });

    group.bench_function("bp", |b| {
        b.iter(|| {
            let mut w = BpWriter::new();
            for (i, t) in tensors.iter().enumerate() {
                w.append(&ProcessGroup {
                    name: format!("r{i}"),
                    step: i as u64,
                    vars: vec![BpVar::from_tensor("x", t)],
                });
            }
            w.finish()
        })
    });

    // Size comparison, printed once (criterion measures time, the table
    // needs bytes too).
    let npz_size = {
        let entries: Vec<ZipEntry> = tensors
            .iter()
            .enumerate()
            .map(|(i, t)| ZipEntry {
                name: format!("r{i}.npy"),
                data: drai_formats::npy::write_npy(t),
            })
            .collect();
        write_zip(&entries).unwrap().len()
    };
    let tfr_size = write_records(tensors.iter().map(|t| {
        drai_formats::example::Example::new()
            .with_floats("x", t.as_slice().to_vec())
            .encode()
    }))
    .len();
    let h5_size = {
        let mut f = H5File::new();
        for (i, t) in tensors.iter().enumerate() {
            f.put_dataset(&format!("/r{i}"), H5Dataset::from_tensor(t, 16))
                .unwrap();
        }
        f.to_bytes().len()
    };
    let bp_size = {
        let mut w = BpWriter::new();
        for (i, t) in tensors.iter().enumerate() {
            w.append(&ProcessGroup {
                name: format!("r{i}"),
                step: i as u64,
                vars: vec![BpVar::from_tensor("x", t)],
            });
        }
        w.finish().len()
    };
    eprintln!(
        "\n[ablation_format] container sizes for {payload} payload bytes (dtype {}):",
        DType::F32
    );
    eprintln!("  npz      {npz_size:>10}");
    eprintln!("  tfrecord {tfr_size:>10}");
    eprintln!("  h5lite   {h5_size:>10}");
    eprintln!("  bp       {bp_size:>10}");

    group.finish();
}

criterion_group!(benches, bench_shard_size, bench_formats);
criterion_main!(benches);
