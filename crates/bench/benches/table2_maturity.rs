//! T2 — Table 2, made quantitative: the cost of advancing one dataset
//! through each readiness level 1→5, stage by stage.
//!
//! The paper's maturity matrix is qualitative. This bench walks a
//! climate-like dataset up the ladder and measures what each level
//! transition actually costs: L1→L2 (validate + initial alignment),
//! L2→L3 (standardize + normalize + label), L3→L4 (features +
//! comprehensive labels), L4→L5 (split + shard). The assessor verifies
//! the level after every transition, so the measured work provably maps
//! to the matrix rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drai_bench::tabular;
use drai_core::dataset::{DatasetManifest, Modality, VariableSpec};
use drai_core::{ReadinessAssessor, ReadinessLevel};
use drai_io::shard::{ShardSpec, ShardWriter};
use drai_io::sink::MemSink;
use drai_tensor::LatLonGrid;
use drai_transform::features::rolling_mean;
use drai_transform::impute::{impute, Strategy};
use drai_transform::label::threshold_labels;
use drai_transform::normalize::{ColumnNormalizer, Method};
use drai_transform::regrid;
use drai_transform::split::{assign, Fractions};
use std::time::Duration;

const ROWS: usize = 20_000;
const COLS: usize = 8;

fn manifest_for_level(level: u8) -> DatasetManifest {
    let mut m = DatasetManifest::raw("ladder", "climate", Modality::Grid, ROWS as u64);
    if level >= 2 {
        m.standard_format = true;
        m.ingest_validated = true;
        m.aligned_initial = true;
    }
    if level >= 3 {
        m.metadata_enriched = true;
        m.schema.push(VariableSpec {
            name: "x".into(),
            dtype: drai_tensor::DType::F64,
            unit: "1".into(),
            shape: vec![COLS],
        });
        m.aligned_standardized = true;
        m.normalized_initial = true;
        m.label_coverage = 0.5;
    }
    if level >= 4 {
        m.high_throughput_ingest = true;
        m.normalized_final = true;
        m.label_coverage = 1.0;
        m.features_extracted = true;
    }
    if level >= 5 {
        m.ingest_automated = true;
        m.alignment_automated = true;
        m.transform_audited = true;
        m.features_validated = true;
        m.split_assigned = true;
        m.sharded = true;
    }
    m
}

fn bench_transitions(c: &mut Criterion) {
    let assessor = ReadinessAssessor::new();
    // Verify the ladder manifests actually land on their levels (so the
    // measured transitions correspond to real matrix rows).
    for level in 1..=5u8 {
        let a = assessor.assess(&manifest_for_level(level)).unwrap();
        assert_eq!(a.overall, ReadinessLevel::from_number(level).unwrap());
    }

    let raw = tabular(ROWS, COLS, 0.08, 11);
    let mut group = c.benchmark_group("table2");
    group.sample_size(15);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(ROWS as u64));

    // L1→L2: validated ingestion + initial alignment (regrid proxy).
    let src = LatLonGrid::global(40, 80);
    let dst = LatLonGrid::global(32, 64);
    let field: Vec<f64> = (0..src.ncells()).map(|k| (k as f64 * 0.01).sin()).collect();
    group.bench_function("L1-to-L2_clean", |b| {
        b.iter_batched(
            || raw.clone(),
            |mut data| {
                impute(&mut data, Strategy::Median).unwrap();
                regrid::bilinear(&src, &field, &dst).unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // L2→L3: standardized alignment + normalization + basic labels.
    let mut clean = raw.clone();
    impute(&mut clean, Strategy::Median).unwrap();
    group.bench_function("L2-to-L3_label", |b| {
        b.iter_batched(
            || clean.clone(),
            |mut data| {
                let cn = ColumnNormalizer::fit(Method::ZScore, &data, COLS).unwrap();
                cn.apply(&mut data).unwrap();
                let col0: Vec<f64> = data.iter().step_by(COLS).copied().collect();
                threshold_labels(&col0, 0.0)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // L3→L4: feature engineering + comprehensive labeling.
    group.bench_function("L3-to-L4_features", |b| {
        b.iter(|| {
            let mut features = Vec::with_capacity(COLS);
            for ci in 0..COLS {
                let col: Vec<f64> = clean.iter().skip(ci).step_by(COLS).copied().collect();
                features.push(rolling_mean(&col, 7).unwrap());
            }
            features
        })
    });

    // L4→L5: split + shard into binary format.
    let records: Vec<Vec<u8>> = clean
        .chunks(COLS)
        .map(|row| {
            let mut rec = Vec::with_capacity(COLS * 8);
            for v in row {
                rec.extend_from_slice(&v.to_le_bytes());
            }
            rec
        })
        .collect();
    group.bench_function("L4-to-L5_shard", |b| {
        b.iter(|| {
            let f = Fractions::standard();
            let sink = MemSink::new();
            let mut splits: [Vec<&[u8]>; 3] = [vec![], vec![], vec![]];
            for (i, rec) in records.iter().enumerate() {
                let s = assign(&format!("r{i}"), 1, f).unwrap();
                splits[match s {
                    drai_transform::split::Split::Train => 0,
                    drai_transform::split::Split::Validation => 1,
                    drai_transform::split::Split::Test => 2,
                }]
                .push(rec);
            }
            for (si, recs) in splits.iter().enumerate() {
                ShardWriter::new(ShardSpec::new(format!("s{si}"), 1 << 20), &sink)
                    .write_all(recs.iter())
                    .unwrap();
            }
            sink
        })
    });

    // Assessment itself is cheap — but measure it so the framework's own
    // overhead is on record.
    let m5 = manifest_for_level(5);
    group.bench_function("assess_manifest", |b| {
        b.iter(|| assessor.assess(&m5).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_transitions);
criterion_main!(benches);
