//! ABL-FAULTS — throughput degradation vs injected fault rate.
//!
//! The paper's level-5 "AI-ready" cell assumes shard archives survive a
//! parallel filesystem's transient failures. This bench quantifies the
//! price of that resilience: the same 16 MiB shard round trip through a
//! `RetrySink(FaultSink(MemSink))` stack at increasing transient fault
//! rates. Backoff goes through a `VirtualClock`, so criterion measures
//! pure compute/retry overhead while the virtual backoff time each rate
//! would cost on a real clock is reported separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_bench::records;
use drai_io::fault::{FaultConfig, FaultSink};
use drai_io::retry::{RetryPolicy, RetrySink, VirtualClock};
use drai_io::shard::{ShardReader, ShardSpec, ShardWriter};
use drai_io::sink::MemSink;
use drai_telemetry::Registry;
use std::time::Duration;

const RATES_PERCENT: [u32; 4] = [0, 5, 10, 20];

fn stack(rate: f64, seed: u64) -> (RetrySink<FaultSink<MemSink>>, std::sync::Arc<VirtualClock>) {
    let clock = VirtualClock::new();
    let policy = RetryPolicy {
        max_attempts: 16,
        ..RetryPolicy::default()
    };
    let sink = RetrySink::with_clock(
        FaultSink::new(MemSink::new(), FaultConfig::transient(seed, rate)),
        policy,
        clock.clone(),
    );
    (sink, clock)
}

fn bench_fault_rates(c: &mut Criterion) {
    let seed = FaultConfig::seed_from_env(1);
    let recs = records(2_000, 8 * 1024, 9); // 16 MiB payload
    let payload: u64 = recs.iter().map(|r| r.len() as u64).sum();

    let mut group = c.benchmark_group("ablation_faults");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(payload));
    for pct in RATES_PERCENT {
        let rate = pct as f64 / 100.0;
        group.bench_function(BenchmarkId::new("round_trip", format!("{pct}pct")), |b| {
            b.iter(|| {
                let (sink, _clock) = stack(rate, seed);
                ShardWriter::new(ShardSpec::new("f", 512 * 1024), &sink)
                    .write_all(&recs)
                    .unwrap();
                let reader = ShardReader::open("f", &sink).unwrap();
                let recovered = reader.read_all_recovering();
                assert!(recovered.damage.is_clean());
                recovered.records
            })
        });
    }
    group.finish();

    // One instrumented pass per rate: retry volume and the virtual
    // backoff each fault rate would cost on a wall clock.
    let registry = Registry::global();
    eprintln!(
        "\n[ablation_faults] retry cost per round trip ({payload} payload bytes, seed {seed}):"
    );
    eprintln!("  rate   retries  exhausted  virtual-backoff");
    for pct in RATES_PERCENT {
        let rate = pct as f64 / 100.0;
        let before_attempts = registry.counter("io.retry.attempts").get();
        let before_exhausted = registry.counter("io.retry.exhausted").get();
        let (sink, clock) = stack(rate, seed);
        ShardWriter::new(ShardSpec::new("f", 512 * 1024), &sink)
            .write_all(&recs)
            .unwrap();
        let reader = ShardReader::open("f", &sink).unwrap();
        let recovered = reader.read_all_recovering();
        assert!(recovered.damage.is_clean());
        eprintln!(
            "  {pct:>3}%  {:>8}  {:>9}  {:>12.3} ms",
            registry.counter("io.retry.attempts").get() - before_attempts,
            registry.counter("io.retry.exhausted").get() - before_exhausted,
            clock.slept_ns() as f64 / 1e6,
        );
    }

    // Persist the fault/retry telemetry next to the criterion results
    // so `scripts/summarize_bench.py` sweeps both.
    drai_bench::export_telemetry("target/criterion/telemetry-faults").ok();
}

criterion_group!(benches, bench_fault_rates);
criterion_main!(benches);
