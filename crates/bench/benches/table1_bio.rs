//! T1-BIO — Table 1 row 3 / §3.3: the bio archetype's
//! `encode → anonymize → fuse → secure-shard` pattern, with a k-anonymity
//! sweep and isolated encode/encrypt kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drai_domains::bio::{self, BioConfig};
use drai_io::crypto::{chacha20_xor, derive_key};
use drai_io::sink::MemSink;
use drai_transform::anonymize::{hash_identifier, k_anonymity};
use drai_transform::encode::Alphabet;
use std::sync::Arc;
use std::time::Duration;

fn bench_bio(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_bio");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));

    // Sequence one-hot encoding (the Enformer step).
    let seq: String = "ACGT".chars().cycle().take(65_536).collect();
    group.throughput(Throughput::Bytes(seq.len() as u64));
    let dna = Alphabet::dna();
    group.bench_function("encode-onehot-64k", |b| b.iter(|| dna.one_hot(&seq)));

    // Identifier hashing throughput.
    let ids: Vec<String> = (0..10_000).map(|i| format!("patient-{i:06}")).collect();
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("anonymize-hash-10k", |b| {
        b.iter(|| {
            ids.iter()
                .map(|id| hash_identifier("salt", id))
                .collect::<Vec<_>>()
        })
    });

    // k-anonymity check over quasi-identifier tuples.
    let rows: Vec<Vec<String>> = (0..10_000)
        .map(|i| vec![format!("{}0-{}9", i % 8, i % 8), format!("37{}**", i % 10)])
        .collect();
    group.bench_function("k-anonymity-10k", |b| {
        b.iter(|| k_anonymity(&rows, 5).unwrap())
    });

    // ChaCha20 encryption throughput (the secure-shard cost).
    let key = derive_key("secret", "bench");
    let nonce = [1u8; 12];
    let payload = vec![0u8; 4 << 20];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("encrypt-chacha20-4MiB", |b| {
        b.iter_batched(
            || payload.clone(),
            |mut data| {
                chacha20_xor(&key, &nonce, 0, &mut data);
                data
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // End-to-end sweep over k.
    for k in [2usize, 5, 10] {
        let config = BioConfig {
            patients: 64,
            tile_len: 256,
            k,
            ..BioConfig::default()
        };
        group.throughput(Throughput::Elements(config.patients as u64));
        group.bench_function(BenchmarkId::new("end-to-end-k", k), |b| {
            b.iter(|| {
                let sink = Arc::new(MemSink::new());
                bio::run(&config, sink).unwrap()
            })
        });
    }

    // Stage breakdown.
    let run = bio::run(
        &BioConfig {
            patients: 64,
            tile_len: 256,
            ..BioConfig::default()
        },
        Arc::new(MemSink::new()),
    )
    .unwrap();
    eprintln!("\n[table1_bio] patients=64 stage breakdown:");
    for s in &run.stages {
        eprintln!(
            "  {:<14} {:>10.3} ms  {:>6} records",
            s.name,
            s.throughput.elapsed.as_secs_f64() * 1e3,
            s.throughput.records
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bio);
criterion_main!(benches);
