//! Self-test for the `drai-bench-report` regression gate: the binary
//! must exit nonzero on a synthetic injected regression, stay green on
//! a clean comparison, respect `--warn-only`, and produce a complete
//! artifact set in `--smoke` mode.

use drai_bench::report::{BenchResult, Report, StageStat};
use std::path::Path;
use std::process::Command;

fn fixture(wall_ns: u64, regrid_ns: u64) -> Report {
    Report {
        pr: 3,
        mode: "full".into(),
        benches: vec![BenchResult {
            name: "table1_climate".into(),
            trace: 1,
            wall_ns,
            items: 512,
            bytes: 4096,
            stages: vec![
                StageStat {
                    name: "pipeline.climate.regrid".into(),
                    total_ns: regrid_ns,
                    self_ns: regrid_ns,
                    count: 1,
                },
                StageStat {
                    name: "io.shard.write_all".into(),
                    total_ns: 50_000_000,
                    self_ns: 50_000_000,
                    count: 1,
                },
            ],
        }],
    }
}

fn write_fixture(dir: &Path, name: &str, report: &Report) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, report.to_json()).unwrap();
    path
}

fn gate(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_drai-bench-report"))
        .args(args)
        .output()
        .unwrap();
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("drai-bench-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn injected_regression_fails_the_gate() {
    let dir = temp_dir("regress");
    let base = write_fixture(&dir, "base.json", &fixture(200_000_000, 100_000_000));
    // 2.5x slower regrid stage, wall time follows.
    let cur = write_fixture(&dir, "cur.json", &fixture(400_000_000, 250_000_000));
    let (code, text) = gate(&[
        "--compare-only",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "gate should fail:\n{text}");
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("pipeline.climate.regrid"), "{text}");
    assert!(text.contains("+150.0%"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clean_comparison_passes_and_warn_only_downgrades() {
    let dir = temp_dir("clean");
    let base = write_fixture(&dir, "base.json", &fixture(200_000_000, 100_000_000));
    let same = write_fixture(&dir, "same.json", &fixture(205_000_000, 101_000_000));
    let (code, text) = gate(&[
        "--compare-only",
        base.to_str().unwrap(),
        same.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("no regressions"), "{text}");

    let slow = write_fixture(&dir, "slow.json", &fixture(400_000_000, 250_000_000));
    let (code, text) = gate(&[
        "--warn-only",
        "--compare-only",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("--warn-only"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mode_mismatch_skips_comparison() {
    let dir = temp_dir("mode");
    let base = write_fixture(&dir, "base.json", &fixture(200_000_000, 100_000_000));
    let mut smoke = fixture(900_000_000, 800_000_000);
    smoke.mode = "smoke".into();
    let cur = write_fixture(&dir, "smoke.json", &smoke);
    let (code, text) = gate(&[
        "--compare-only",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("skipped"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_baseline_is_a_usage_error() {
    let dir = temp_dir("malformed");
    std::fs::write(dir.join("bad.json"), "{\"format\": \"other\"}").unwrap();
    let good = write_fixture(&dir, "good.json", &fixture(1, 1));
    let (code, text) = gate(&[
        "--compare-only",
        dir.join("bad.json").to_str().unwrap(),
        good.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("error"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn smoke_run_produces_report_and_trace_artifacts() {
    let dir = temp_dir("smoke");
    let (code, text) = gate(&[
        "--smoke",
        "--warn-only",
        "--pr",
        "8",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    let report =
        Report::parse(&std::fs::read_to_string(dir.join("BENCH_8.json")).unwrap()).unwrap();
    assert_eq!(report.mode, "smoke");
    assert_eq!(report.benches.len(), 15);
    for b in &report.benches {
        assert!(b.wall_ns > 0, "{} has zero wall time", b.name);
        assert!(!b.stages.is_empty(), "{} has no stages", b.name);
        assert!(dir
            .join("trace")
            .join(format!("{}.trace.json", b.name))
            .is_file());
        assert!(dir
            .join("flame")
            .join(format!("{}.folded", b.name))
            .is_file());
    }
    // The climate trace must break down into domain + pipeline + worker spans.
    let climate = report
        .benches
        .iter()
        .find(|b| b.name == "table1_climate")
        .unwrap();
    let stage_names: Vec<&str> = climate.stages.iter().map(|s| s.name.as_str()).collect();
    assert!(
        stage_names.contains(&"domain.climate.run"),
        "{stage_names:?}"
    );
    assert!(
        stage_names.contains(&"io.prefetch.worker"),
        "{stage_names:?}"
    );
    assert!(
        stage_names.contains(&"io.shard.write_all"),
        "{stage_names:?}"
    );
    let summary = std::fs::read_to_string(dir.join("critical_paths.txt")).unwrap();
    assert!(summary.contains("== table1_climate =="));
    assert!(summary.contains("critical path"));
    std::fs::remove_dir_all(&dir).unwrap();
}
