//! Owned, row-major n-dimensional arrays.

use crate::dtype::{DType, Element};
use crate::view::TensorView;
use std::fmt;

/// Errors produced by tensor construction and reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Element count does not match the product of the shape.
    ShapeMismatch {
        /// Number of elements supplied.
        elements: usize,
        /// Requested shape.
        shape: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// An index along an axis exceeded that axis's length.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Axis length.
        len: usize,
    },
    /// Two tensors that must agree in shape do not.
    IncompatibleShapes {
        /// Left-hand shape.
        left: Vec<usize>,
        /// Right-hand shape.
        right: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { elements, shape } => write!(
                f,
                "cannot shape {elements} elements into {shape:?} ({} expected)",
                shape.iter().product::<usize>()
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for axis of length {len}")
            }
            TensorError::IncompatibleShapes { left, right } => {
                write!(f, "incompatible shapes {left:?} vs {right:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Compute row-major (C-order) strides for a shape, in elements.
pub(crate) fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// An owned, contiguous, row-major n-dimensional array.
///
/// This is deliberately minimal: the DRAI pipelines need shaped numeric
/// buffers with slicing, elementwise math, axis reductions and serialization
/// — not a full BLAS. Parallelism is applied by callers over the *leading*
/// axis (samples / timesteps / records), which `lanes`/`index_axis0` make
/// cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T: Element> {
    data: Vec<T>,
    shape: Vec<usize>,
}

impl<T: Element> Tensor<T> {
    /// Build a tensor from a flat vector and a shape.
    pub fn from_vec(data: Vec<T>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                elements: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: T) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// A zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, T::zero())
    }

    /// Build by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> T) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(&mut f).collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Runtime dtype tag.
    pub fn dtype(&self) -> DType {
        T::DTYPE
    }

    /// Flat, row-major element slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat element slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.shape)
    }

    /// Flat offset of a multi-index. Panics in debug builds on rank mismatch.
    fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.shape.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: index.len(),
                rank: self.shape.len(),
            });
        }
        let strides = self.strides();
        let mut off = 0;
        for (axis, (&i, (&len, &s))) in index
            .iter()
            .zip(self.shape.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= len {
                let _ = axis;
                return Err(TensorError::IndexOutOfRange { index: i, len });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> Result<T, TensorError> {
        Ok(self.data[self.offset(index)?])
    }

    /// Set the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<(), TensorError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if self.data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                elements: self.data.len(),
                shape: shape.to_vec(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Borrow the whole tensor as a view.
    pub fn view(&self) -> TensorView<'_, T> {
        TensorView::new(&self.data, &self.shape)
    }

    /// Zero-copy subtensor at `index` along axis 0 (e.g. one sample of a
    /// batch, one timestep of a field).
    pub fn index_axis0(&self, index: usize) -> Result<TensorView<'_, T>, TensorError> {
        if self.shape.is_empty() {
            return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
        }
        if index >= self.shape[0] {
            return Err(TensorError::IndexOutOfRange {
                index,
                len: self.shape[0],
            });
        }
        let inner: usize = self.shape[1..].iter().product();
        Ok(TensorView::new(
            &self.data[index * inner..(index + 1) * inner],
            &self.shape[1..],
        ))
    }

    /// Iterator over zero-copy slices along axis 0.
    pub fn lanes(&self) -> impl Iterator<Item = TensorView<'_, T>> + '_ {
        let n = if self.shape.is_empty() {
            0
        } else {
            self.shape[0]
        };
        (0..n).map(move |i| self.index_axis0(i).expect("lane index in range"))
    }

    /// Contiguous range `[start, end)` along axis 0, zero-copy.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Result<TensorView<'_, T>, TensorError> {
        if self.shape.is_empty() {
            return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
        }
        if start > end || end > self.shape[0] {
            return Err(TensorError::IndexOutOfRange {
                index: end,
                len: self.shape[0],
            });
        }
        let inner: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Ok(TensorView::new_owned_shape(
            &self.data[start * inner..end * inner],
            shape,
        ))
    }

    /// Elementwise map into a (possibly different-typed) new tensor.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place elementwise transformation.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip_with(
        &self,
        other: &Tensor<T>,
        f: impl Fn(T, T) -> T,
    ) -> Result<Tensor<T>, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Serialize elements as little-endian bytes (row-major).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * T::DTYPE.size_bytes());
        for &x in &self.data {
            x.write_le(&mut out);
        }
        out
    }

    /// Deserialize from little-endian bytes with a known shape.
    pub fn from_le_bytes(bytes: &[u8], shape: &[usize]) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        let esz = T::DTYPE.size_bytes();
        if bytes.len() != n * esz {
            return Err(TensorError::ShapeMismatch {
                elements: bytes.len() / esz,
                shape: shape.to_vec(),
            });
        }
        let data = bytes.chunks_exact(esz).map(T::read_le).collect();
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Concatenate tensors along axis 0. All inputs must share trailing
    /// dimensions. Used when aggregating samples across shots/files before
    /// sharding.
    pub fn concat_axis0(parts: &[Tensor<T>]) -> Result<Tensor<T>, TensorError> {
        let first = parts.first().ok_or(TensorError::ShapeMismatch {
            elements: 0,
            shape: vec![],
        })?;
        let tail = &first.shape[1..];
        let mut rows = 0usize;
        for p in parts {
            if p.shape.len() != first.shape.len() || &p.shape[1..] != tail {
                return Err(TensorError::IncompatibleShapes {
                    left: first.shape.clone(),
                    right: p.shape.clone(),
                });
            }
            rows += p.shape[0];
        }
        let mut data = Vec::with_capacity(rows * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut shape = first.shape.clone();
        shape[0] = rows;
        Ok(Tensor { data, shape })
    }
}

impl<T: Element> Tensor<T> {
    /// Mean of all elements as f64; `None` for an empty tensor.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        let sum: f64 = self.data.iter().map(|x| x.to_f64()).sum();
        Some(sum / self.data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.rank(), 3);
        assert_eq!(t.len(), 24);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.get(&[1, 0, 2]).unwrap(), 14.0);
        assert!(t.get(&[2, 0, 0]).is_err());
        assert!(t.get(&[0, 0]).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let err = Tensor::from_vec(vec![1.0_f64; 5], &[2, 3]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::ShapeMismatch { elements: 5, .. }
        ));
    }

    #[test]
    fn strides_row_major() {
        let t = Tensor::<f32>::zeros(&[2, 3, 4]);
        assert_eq!(t.strides(), vec![12, 4, 1]);
        let s = Tensor::<f32>::zeros(&[7]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::<i64>::zeros(&[3, 3]);
        t.set(&[1, 2], 42).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 42);
        assert_eq!(t.get(&[2, 1]).unwrap(), 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1, 2, 3, 4, 5, 6_i32], &[2, 3]).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 2]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn axis0_views() {
        let t = Tensor::from_vec((0..6).map(|i| i as f64).collect(), &[3, 2]).unwrap();
        let row1 = t.index_axis0(1).unwrap();
        assert_eq!(row1.as_slice(), &[2.0, 3.0]);
        assert_eq!(row1.shape(), &[2]);
        assert!(t.index_axis0(3).is_err());

        let mid = t.slice_axis0(1, 3).unwrap();
        assert_eq!(mid.shape(), &[2, 2]);
        assert_eq!(mid.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn lanes_iterate_all_rows() {
        let t = Tensor::from_vec((0..6).collect::<Vec<i32>>(), &[3, 2]).unwrap();
        let sums: Vec<i32> = t.lanes().map(|l| l.as_slice().iter().sum()).collect();
        assert_eq!(sums, vec![1, 5, 9]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0], &[3]).unwrap();
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0]);
        let c = a.zip_with(&b, |x, y| y - x).unwrap();
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        let d = Tensor::<f32>::zeros(&[2]);
        assert!(a.zip_with(&d, |x, _| x).is_err());
    }

    #[test]
    fn byte_round_trip() {
        let t = Tensor::from_vec(vec![1.5_f64, -2.25, 3.125, 0.0], &[2, 2]).unwrap();
        let bytes = t.to_le_bytes();
        assert_eq!(bytes.len(), 32);
        let back = Tensor::<f64>::from_le_bytes(&bytes, &[2, 2]).unwrap();
        assert_eq!(back, t);
        assert!(Tensor::<f64>::from_le_bytes(&bytes, &[3, 2]).is_err());
    }

    #[test]
    fn concat_axis0_works() {
        let a = Tensor::from_vec(vec![1, 2, 3, 4_i32], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5, 6_i32], &[1, 2]).unwrap();
        let c = Tensor::concat_axis0(&[a.clone(), b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4, 5, 6]);
        let bad = Tensor::from_vec(vec![1, 2, 3_i32], &[1, 3]).unwrap();
        assert!(Tensor::concat_axis0(&[a, bad]).is_err());
    }

    #[test]
    fn mean_of_elements() {
        let t = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.mean(), Some(2.5));
        assert_eq!(Tensor::<f32>::zeros(&[0]).mean(), None);
    }

    #[test]
    fn from_fn_fills_by_flat_index() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f64);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
