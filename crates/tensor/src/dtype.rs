//! Element types supported by DRAI tensors and on-disk formats.
//!
//! Scientific AI pipelines care about precision (the paper cites 32/64-bit
//! floating point as a hard requirement for physics-constrained models), so
//! the dtype travels with every dataset manifest and every serialized shard.

use std::fmt;

/// Runtime tag describing the element type of a tensor or stored variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned byte (images, one-hot codes, raw payloads).
    U8,
    /// Boolean stored as one byte.
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::U8 | DType::Bool => 1,
        }
    }

    /// True for floating-point dtypes.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// NumPy-style descriptor string (little endian), as used by the NPY
    /// header writer in `drai-formats`.
    pub const fn numpy_descr(self) -> &'static str {
        match self {
            DType::F32 => "<f4",
            DType::F64 => "<f8",
            DType::I32 => "<i4",
            DType::I64 => "<i8",
            DType::U8 => "|u1",
            DType::Bool => "|b1",
        }
    }

    /// Parse a NumPy descriptor string.
    pub fn from_numpy_descr(s: &str) -> Option<DType> {
        match s {
            "<f4" | "=f4" => Some(DType::F32),
            "<f8" | "=f8" => Some(DType::F64),
            "<i4" | "=i4" => Some(DType::I32),
            "<i8" | "=i8" => Some(DType::I64),
            "|u1" | "<u1" => Some(DType::U8),
            "|b1" => Some(DType::Bool),
            _ => None,
        }
    }

    /// Stable one-byte code used by drai's own binary containers
    /// (`h5lite`, `bp`).
    pub const fn code(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::I64 => 3,
            DType::U8 => 4,
            DType::Bool => 5,
        }
    }

    /// Inverse of [`DType::code`].
    pub fn from_code(c: u8) -> Option<DType> {
        Some(match c {
            0 => DType::F32,
            1 => DType::F64,
            2 => DType::I32,
            3 => DType::I64,
            4 => DType::U8,
            5 => DType::Bool,
            _ => return None,
        })
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U8 => "u8",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Trait connecting Rust element types to their runtime [`DType`] tag and
/// little-endian byte serialization. Implemented only for the closed set of
/// supported types (sealed by convention).
pub trait Element: Copy + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Runtime dtype tag for this element type.
    const DTYPE: DType;
    /// Additive identity.
    fn zero() -> Self;
    /// Convert to f64 for statistics (lossy for i64 beyond 2^53).
    fn to_f64(self) -> f64;
    /// Convert from f64 (saturating/rounding as appropriate).
    fn from_f64(v: f64) -> Self;
    /// Append the little-endian byte representation to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read one element from a little-endian byte slice.
    /// `bytes.len()` must be at least `DTYPE.size_bytes()`.
    fn read_le(bytes: &[u8]) -> Self;
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;
    fn zero() -> Self {
        0.0
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes[..4].try_into().expect("f32 needs 4 bytes"))
    }
}

impl Element for f64 {
    const DTYPE: DType = DType::F64;
    fn zero() -> Self {
        0.0
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes[..8].try_into().expect("f64 needs 8 bytes"))
    }
}

impl Element for i32 {
    const DTYPE: DType = DType::I32;
    fn zero() -> Self {
        0
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v.round() as i32
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        i32::from_le_bytes(bytes[..4].try_into().expect("i32 needs 4 bytes"))
    }
}

impl Element for i64 {
    const DTYPE: DType = DType::I64;
    fn zero() -> Self {
        0
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v.round() as i64
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        i64::from_le_bytes(bytes[..8].try_into().expect("i64 needs 8 bytes"))
    }
}

impl Element for u8 {
    const DTYPE: DType = DType::U8;
    fn zero() -> Self {
        0
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v.round().clamp(0.0, 255.0) as u8
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self);
    }
    fn read_le(bytes: &[u8]) -> Self {
        bytes[0]
    }
}

impl Element for bool {
    const DTYPE: DType = DType::Bool;
    fn zero() -> Self {
        false
    }
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
    fn read_le(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_types() {
        assert_eq!(DType::F32.size_bytes(), std::mem::size_of::<f32>());
        assert_eq!(DType::F64.size_bytes(), std::mem::size_of::<f64>());
        assert_eq!(DType::I32.size_bytes(), std::mem::size_of::<i32>());
        assert_eq!(DType::I64.size_bytes(), std::mem::size_of::<i64>());
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn numpy_descr_round_trip() {
        for d in [
            DType::F32,
            DType::F64,
            DType::I32,
            DType::I64,
            DType::U8,
            DType::Bool,
        ] {
            assert_eq!(DType::from_numpy_descr(d.numpy_descr()), Some(d));
        }
        assert_eq!(DType::from_numpy_descr(">f4"), None);
    }

    #[test]
    fn code_round_trip() {
        for d in [
            DType::F32,
            DType::F64,
            DType::I32,
            DType::I64,
            DType::U8,
            DType::Bool,
        ] {
            assert_eq!(DType::from_code(d.code()), Some(d));
        }
        assert_eq!(DType::from_code(99), None);
    }

    #[test]
    fn element_byte_round_trip() {
        let mut buf = Vec::new();
        1.5_f32.write_le(&mut buf);
        assert_eq!(f32::read_le(&buf), 1.5);
        buf.clear();
        (-7.25_f64).write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), -7.25);
        buf.clear();
        (-42_i32).write_le(&mut buf);
        assert_eq!(i32::read_le(&buf), -42);
        buf.clear();
        (1_i64 << 40).write_le(&mut buf);
        assert_eq!(i64::read_le(&buf), 1 << 40);
        buf.clear();
        200_u8.write_le(&mut buf);
        assert_eq!(u8::read_le(&buf), 200);
        buf.clear();
        true.write_le(&mut buf);
        assert!(bool::read_le(&buf));
    }

    #[test]
    fn float_flags() {
        assert!(DType::F32.is_float());
        assert!(DType::F64.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::Bool.is_float());
    }

    #[test]
    fn from_f64_clamps_u8() {
        assert_eq!(u8::from_f64(300.0), 255);
        assert_eq!(u8::from_f64(-5.0), 0);
        assert_eq!(u8::from_f64(12.6), 13);
    }
}
