//! Streaming statistics for normalization and data-quality reporting.
//!
//! The paper's pipelines normalize "by mean and standard deviation" computed
//! over terabyte-scale inputs; a two-pass computation is not an option at
//! that volume. [`Welford`] provides the numerically stable single-pass
//! update plus Chan's parallel merge, so statistics can be reduced across
//! shards/threads. [`P2Quantile`] implements the P² algorithm (Jain &
//! Chlamtac, 1985) for constant-memory quantile estimation used by robust
//! scaling and outlier detection.

/// Numerically stable single-pass mean/variance accumulator with min/max.
///
/// Uses Welford's algorithm; `merge` implements the pairwise combination
/// (Chan et al.), making it a commutative monoid suitable for parallel
/// reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    nan_count: u64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nan_count: 0,
        }
    }

    /// Add one observation. NaNs are counted separately and excluded from
    /// the moments, matching the "handle missing values" preprocessing step.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Add a slice of observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Combine with another accumulator (parallel reduction step).
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.count == 0 {
            let mut r = *other;
            r.nan_count += self.nan_count;
            return r;
        }
        if other.count == 0 {
            let mut r = *self;
            r.nan_count += other.nan_count;
            return r;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / count as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / count as f64;
        Welford {
            count,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            nan_count: self.nan_count + other.nan_count,
        }
    }

    /// Number of non-NaN observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN observations skipped.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 1 observation).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 when fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// P² (piecewise-parabolic) streaming quantile estimator.
///
/// Tracks five markers whose heights approximate the target quantile without
/// storing observations. Accuracy is ample for robust scaling and outlier
/// thresholds on unimodal science data; exactness is not required (and the
/// estimator is exact for the first five observations).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q` in (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Add an observation (NaNs ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            self.initial
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            if self.initial.len() == 5 {
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += *inc;
        }

        // Adjust interior markers with the parabolic formula, falling back
        // to linear interpolation when the parabola would break ordering.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let hp = self.parabolic(i, d);
                if self.heights[i - 1] < hp && hp < self.heights[i + 1] {
                    self.heights[i] = hp;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current quantile estimate. `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            // Exact quantile on the few stored observations.
            let idx = ((self.initial.len() - 1) as f64 * self.q).round() as usize;
            return Some(self.initial[idx]);
        }
        Some(self.heights[2])
    }

    /// Observations seen (excluding NaN).
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Fixed-bin histogram over a known range, used by quality reports to
/// detect class imbalance and coverage gaps.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record an observation (NaN ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Imbalance ratio: max bin count / mean bin count of non-empty support.
    /// 1.0 means perfectly uniform; large values signal class imbalance
    /// (a Table 1 readiness challenge for materials data).
    pub fn imbalance_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let nonzero = self.bins.iter().filter(|&&c| c > 0).count();
        let mean = total as f64 / nonzero.max(1) as f64;
        let max = *self.bins.iter().max().expect("nbins > 0") as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let mut w = Welford::new();
        w.extend(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.variance() - var).abs() < 1e-10);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).cos() * 3.0).collect();
        let (a, b) = xs.split_at(137);
        let mut wa = Welford::new();
        wa.extend(a);
        let mut wb = Welford::new();
        wb.extend(b);
        let merged = wa.merge(&wb);
        let mut seq = Welford::new();
        seq.extend(&xs);
        assert!((merged.mean() - seq.mean()).abs() < 1e-10);
        assert!((merged.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.extend(&[1.0, 2.0, 3.0]);
        let e = Welford::new();
        assert_eq!(w.merge(&e), w);
        assert_eq!(e.merge(&w), w);
    }

    #[test]
    fn welford_skips_nan() {
        let mut w = Welford::new();
        w.extend(&[1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(w.count(), 2);
        assert_eq!(w.nan_count(), 2);
        assert_eq!(w.mean(), 2.0);
    }

    #[test]
    fn welford_sample_variance() {
        let mut w = Welford::new();
        w.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn p2_median_on_uniform() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic pseudo-random uniform stream.
        let mut state = 0x2545F4914F6CDD1D_u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            q.push(x);
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_tail_quantile() {
        let mut q = P2Quantile::new(0.95);
        for i in 0..10_000 {
            q.push(i as f64);
        }
        let est = q.estimate().unwrap();
        assert!((est - 9500.0).abs() < 100.0, "p95 estimate {est}");
    }

    #[test]
    fn p2_exact_for_small_n() {
        let mut q = P2Quantile::new(0.5);
        q.push(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.push(20.0);
        q.push(30.0);
        assert_eq!(q.estimate(), Some(20.0));
    }

    #[test]
    fn p2_handles_nan_and_empty() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.push(f64::NAN);
        assert_eq!(q.estimate(), None);
        assert_eq!(q.count(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn histogram_counts_and_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0);
        h.push(f64::NAN);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert!((h.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_imbalance() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..90 {
            h.push(0.5);
        }
        for _ in 0..10 {
            h.push(1.5);
        }
        assert!((h.imbalance_ratio() - 1.8).abs() < 1e-12);
    }
}
