//! Borrowed, contiguous tensor views.
//!
//! Views are produced by slicing owned [`crate::Tensor`]s along the leading
//! axis; they are the unit handed to parallel batch stages so that record
//! fan-out never copies the underlying field data.

use crate::dtype::Element;
use crate::tensor::{Tensor, TensorError};
use std::borrow::Cow;

/// A borrowed, contiguous, row-major view over tensor data.
///
/// The shape is usually borrowed from the parent tensor; leading-axis range
/// slices own a small adjusted shape vector instead (hence `Cow`).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorView<'a, T: Element> {
    data: &'a [T],
    shape: Cow<'a, [usize]>,
}

impl<'a, T: Element> TensorView<'a, T> {
    /// Construct from raw parts. `data.len()` must equal the shape product.
    pub(crate) fn new(data: &'a [T], shape: &'a [usize]) -> Self {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorView {
            data,
            shape: Cow::Borrowed(shape),
        }
    }

    /// Construct from raw parts with an owned shape (used by range slices
    /// whose leading dimension differs from the parent's).
    pub(crate) fn new_owned_shape(data: &'a [T], shape: Vec<usize>) -> Self {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>());
        TensorView {
            data,
            shape: Cow::Owned(shape),
        }
    }

    /// Construct a view over a flat slice with an explicit shape.
    pub fn from_slice(data: &'a [T], shape: &'a [usize]) -> Result<Self, TensorError> {
        if data.len() != shape.iter().product::<usize>() {
            return Err(TensorError::ShapeMismatch {
                elements: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(TensorView {
            data,
            shape: Cow::Borrowed(shape),
        })
    }

    /// View shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat, row-major slice of the viewed elements.
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }

    /// Copy into an owned tensor.
    pub fn to_tensor(&self) -> Tensor<T> {
        Tensor::from_vec(self.data.to_vec(), &self.shape).expect("view shape is consistent")
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> Result<T, TensorError> {
        if index.len() != self.shape.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: index.len(),
                rank: self.shape.len(),
            });
        }
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.shape.len()).rev() {
            let (i, len) = (index[axis], self.shape[axis]);
            if i >= len {
                return Err(TensorError::IndexOutOfRange { index: i, len });
            }
            off += i * stride;
            stride *= len;
        }
        Ok(self.data[off])
    }

    /// Zero-copy subview at `index` along axis 0.
    pub fn index_axis0(&self, index: usize) -> Result<TensorView<'a, T>, TensorError> {
        if self.shape.is_empty() {
            return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
        }
        if index >= self.shape[0] {
            return Err(TensorError::IndexOutOfRange {
                index,
                len: self.shape[0],
            });
        }
        let inner: usize = self.shape[1..].iter().product();
        let sub = &self.data[index * inner..(index + 1) * inner];
        Ok(match &self.shape {
            Cow::Borrowed(shape) => TensorView::new(sub, &shape[1..]),
            Cow::Owned(shape) => TensorView::new_owned_shape(sub, shape[1..].to_vec()),
        })
    }

    /// Mean of viewed elements as f64 (None when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        Some(self.data.iter().map(|x| x.to_f64()).sum::<f64>() / self.data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_checks_shape() {
        let data = [1.0_f32, 2.0, 3.0, 4.0];
        let shape = [2, 2];
        let v = TensorView::from_slice(&data, &shape).unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(&[1, 0]).unwrap(), 3.0);
        let bad_shape = [3, 2];
        assert!(TensorView::from_slice(&data, &bad_shape).is_err());
    }

    #[test]
    fn nested_axis0() {
        let data: Vec<i32> = (0..12).collect();
        let shape = [2, 3, 2];
        let v = TensorView::from_slice(&data, &shape).unwrap();
        let sub = v.index_axis0(1).unwrap();
        assert_eq!(sub.shape(), &[3, 2]);
        assert_eq!(sub.as_slice(), &[6, 7, 8, 9, 10, 11]);
        let sub2 = sub.index_axis0(2).unwrap();
        assert_eq!(sub2.as_slice(), &[10, 11]);
        assert!(sub2.index_axis0(0).unwrap().index_axis0(0).is_err());
    }

    #[test]
    fn to_tensor_round_trip() {
        let t = Tensor::from_vec(vec![5_u8, 6, 7, 8], &[2, 2]).unwrap();
        let v = t.view();
        assert_eq!(v.to_tensor(), t);
    }

    #[test]
    fn view_mean() {
        let data = [2.0_f64, 4.0];
        let shape = [2];
        let v = TensorView::from_slice(&data, &shape).unwrap();
        assert_eq!(v.mean(), Some(3.0));
    }
}
