//! # drai-tensor
//!
//! A small, dependency-free n-dimensional array library serving as the
//! numeric substrate for the DRAI data-readiness pipelines.
//!
//! The paper's workflows ("Data Readiness for Scientific AI at Scale",
//! ICPP 2025) shuttle multivariate gridded fields, multirate time series,
//! one-hot sequence tensors, and per-node graph features between
//! preprocessing stages. All of those are represented here as row-major
//! strided [`Tensor`]s over a small set of element types.
//!
//! Design points:
//!
//! * **Row-major, strided.** Views ([`TensorView`]) share storage without
//!   copying; slicing along the leading axis is zero-cost.
//! * **Streaming statistics.** [`stats::Welford`] implements the numerically
//!   stable single-pass mean/variance update with a parallel `merge`, so
//!   normalization statistics can be fitted with `rayon`-style reductions
//!   over shards. [`stats::P2Quantile`] provides constant-memory quantile
//!   estimates for robust scaling and outlier reporting.
//! * **Grid awareness.** [`grid::LatLonGrid`] carries the geometry needed by
//!   conservative regridding (cell bounds, areas) in the climate archetype.
//!
//! ```
//! use drai_tensor::{Tensor, stats::Welford};
//!
//! let t = Tensor::from_vec(vec![1.0_f64, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let mut w = Welford::new();
//! for &x in t.as_slice() { w.push(x); }
//! assert!((w.mean() - 2.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod dtype;
pub mod grid;
pub mod ops;
pub mod stats;
pub mod tensor;
pub mod view;

pub use dtype::{DType, Element};
pub use grid::LatLonGrid;
pub use tensor::{Tensor, TensorError};
pub use view::TensorView;
