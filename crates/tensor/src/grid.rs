//! Regular latitude–longitude grid descriptors for the climate archetype.
//!
//! Regridding (ClimaX/Pangu-Weather style "interpolate spatial grids") needs
//! the geometry of both source and target grids: cell-center coordinates,
//! cell bounds, and spherical cell areas (for conservative remapping).

/// A regular (equally spaced) global latitude–longitude grid.
///
/// Latitude cell centers run from south to north, longitude centers from 0°
/// eastward; both are uniformly spaced and cover the full globe, matching
/// the layout of typical reanalysis products after standardization.
#[derive(Debug, Clone, PartialEq)]
pub struct LatLonGrid {
    nlat: usize,
    nlon: usize,
}

impl LatLonGrid {
    /// A global grid with `nlat × nlon` cells.
    pub fn global(nlat: usize, nlon: usize) -> Self {
        assert!(nlat > 0 && nlon > 0, "grid must be non-empty");
        LatLonGrid { nlat, nlon }
    }

    /// Number of latitude rows.
    pub fn nlat(&self) -> usize {
        self.nlat
    }

    /// Number of longitude columns.
    pub fn nlon(&self) -> usize {
        self.nlon
    }

    /// Total number of cells.
    pub fn ncells(&self) -> usize {
        self.nlat * self.nlon
    }

    /// Shape `[nlat, nlon]` for tensor construction.
    pub fn shape(&self) -> [usize; 2] {
        [self.nlat, self.nlon]
    }

    /// Latitude spacing in degrees.
    pub fn dlat(&self) -> f64 {
        180.0 / self.nlat as f64
    }

    /// Longitude spacing in degrees.
    pub fn dlon(&self) -> f64 {
        360.0 / self.nlon as f64
    }

    /// Latitude of the center of row `i` (degrees, -90..90, south→north).
    pub fn lat_center(&self, i: usize) -> f64 {
        -90.0 + (i as f64 + 0.5) * self.dlat()
    }

    /// Longitude of the center of column `j` (degrees, 0..360 eastward).
    pub fn lon_center(&self, j: usize) -> f64 {
        (j as f64 + 0.5) * self.dlon()
    }

    /// Latitude bounds `[south, north]` of row `i` in degrees.
    pub fn lat_bounds(&self, i: usize) -> (f64, f64) {
        let s = -90.0 + i as f64 * self.dlat();
        (s, s + self.dlat())
    }

    /// Longitude bounds `[west, east]` of column `j` in degrees.
    pub fn lon_bounds(&self, j: usize) -> (f64, f64) {
        let w = j as f64 * self.dlon();
        (w, w + self.dlon())
    }

    /// Area of cell `(i, j)` on the unit sphere (steradians).
    ///
    /// `A = Δλ · (sin φ_n − sin φ_s)`: constant in longitude, shrinking
    /// toward the poles — the weighting that conservative regridding and
    /// area-weighted statistics must respect.
    pub fn cell_area(&self, i: usize, _j: usize) -> f64 {
        let (s, n) = self.lat_bounds(i);
        let dlon_rad = self.dlon().to_radians();
        dlon_rad * (n.to_radians().sin() - s.to_radians().sin())
    }

    /// Sum of all cell areas; equals the sphere area `4π` up to rounding.
    pub fn total_area(&self) -> f64 {
        (0..self.nlat)
            .map(|i| self.cell_area(i, 0) * self.nlon as f64)
            .sum()
    }

    /// Area-weighted mean of a field laid out `[nlat, nlon]` row-major.
    /// NaN cells are excluded along with their weight.
    pub fn area_weighted_mean(&self, field: &[f64]) -> Option<f64> {
        assert_eq!(field.len(), self.ncells(), "field/grid size mismatch");
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..self.nlat {
            let a = self.cell_area(i, 0);
            for j in 0..self.nlon {
                let v = field[i * self.nlon + j];
                if v.is_nan() {
                    continue;
                }
                num += a * v;
                den += a;
            }
        }
        if den == 0.0 {
            None
        } else {
            Some(num / den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_and_bounds() {
        let g = LatLonGrid::global(4, 8);
        assert_eq!(g.dlat(), 45.0);
        assert_eq!(g.dlon(), 45.0);
        assert_eq!(g.lat_center(0), -67.5);
        assert_eq!(g.lat_center(3), 67.5);
        assert_eq!(g.lon_center(0), 22.5);
        assert_eq!(g.lat_bounds(0), (-90.0, -45.0));
        assert_eq!(g.lon_bounds(7), (315.0, 360.0));
    }

    #[test]
    fn total_area_is_sphere() {
        for (nlat, nlon) in [(4, 8), (32, 64), (90, 180)] {
            let g = LatLonGrid::global(nlat, nlon);
            let area = g.total_area();
            assert!(
                (area - 4.0 * std::f64::consts::PI).abs() < 1e-9,
                "{nlat}x{nlon}: {area}"
            );
        }
    }

    #[test]
    fn polar_cells_smaller_than_equatorial() {
        let g = LatLonGrid::global(16, 32);
        assert!(g.cell_area(0, 0) < g.cell_area(8, 0));
        assert!((g.cell_area(0, 0) - g.cell_area(15, 0)).abs() < 1e-15);
    }

    #[test]
    fn area_weighted_mean_constant_field() {
        let g = LatLonGrid::global(8, 16);
        let field = vec![3.5; g.ncells()];
        let m = g.area_weighted_mean(&field).unwrap();
        assert!((m - 3.5).abs() < 1e-12);
    }

    #[test]
    fn area_weighted_mean_skips_nan() {
        let g = LatLonGrid::global(2, 2);
        let mut field = vec![1.0; 4];
        field[3] = f64::NAN;
        let m = g.area_weighted_mean(&field).unwrap();
        assert!((m - 1.0).abs() < 1e-12);
        let all_nan = vec![f64::NAN; 4];
        assert_eq!(g.area_weighted_mean(&all_nan), None);
    }

    #[test]
    fn area_weighting_differs_from_plain_mean() {
        // Field = 1 at poles, 0 at equator rows: plain mean 0.5,
        // area-weighted mean < 0.5 because polar cells are smaller.
        let g = LatLonGrid::global(4, 4);
        let mut field = vec![0.0; 16];
        for j in 0..4 {
            field[j] = 1.0; // southernmost row
            field[12 + j] = 1.0; // northernmost row
        }
        let m = g.area_weighted_mean(&field).unwrap();
        assert!(m < 0.5, "weighted mean {m}");
    }
}
