//! Elementwise and reduction operations used by preprocessing kernels.

use crate::dtype::Element;
use crate::tensor::{Tensor, TensorError};

/// Reduce along the leading axis with `f`, producing a tensor of the
/// trailing shape. E.g. summing a `[T, H, W]` field stack over time yields
/// an `[H, W]` map.
pub fn reduce_axis0<T: Element>(
    t: &Tensor<T>,
    init: T,
    f: impl Fn(T, T) -> T,
) -> Result<Tensor<T>, TensorError> {
    if t.rank() == 0 {
        return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
    }
    let inner: usize = t.shape()[1..].iter().product();
    let mut acc = vec![init; inner];
    for lane in t.lanes() {
        for (a, &x) in acc.iter_mut().zip(lane.as_slice()) {
            *a = f(*a, x);
        }
    }
    Tensor::from_vec(acc, &t.shape()[1..])
}

/// Per-position mean along the leading axis (f64 accumulation).
pub fn mean_axis0<T: Element>(t: &Tensor<T>) -> Result<Tensor<f64>, TensorError> {
    if t.rank() == 0 {
        return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
    }
    let n = t.shape()[0];
    let inner: usize = t.shape()[1..].iter().product();
    let mut acc = vec![0.0_f64; inner];
    for lane in t.lanes() {
        for (a, &x) in acc.iter_mut().zip(lane.as_slice()) {
            *a += x.to_f64();
        }
    }
    if n > 0 {
        for a in &mut acc {
            *a /= n as f64;
        }
    }
    Tensor::from_vec(acc, &t.shape()[1..])
}

/// Index of the maximum element in a flat tensor (`None` when empty or all
/// NaN). Ties resolve to the first occurrence.
pub fn argmax<T: Element>(t: &Tensor<T>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, x) in t.as_slice().iter().enumerate() {
        let v = x.to_f64();
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Clamp all elements into `[lo, hi]` in place (via f64).
pub fn clamp_inplace<T: Element>(t: &mut Tensor<T>, lo: f64, hi: f64) {
    t.map_inplace(|x| {
        let v = x.to_f64();
        if v < lo {
            T::from_f64(lo)
        } else if v > hi {
            T::from_f64(hi)
        } else {
            x
        }
    });
}

/// Dot product of two equally shaped tensors (f64 accumulation).
pub fn dot<T: Element>(a: &Tensor<T>, b: &Tensor<T>) -> Result<f64, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::IncompatibleShapes {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
        });
    }
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x.to_f64() * y.to_f64())
        .sum())
}

/// L2 norm of all elements.
pub fn l2_norm<T: Element>(t: &Tensor<T>) -> f64 {
    t.as_slice()
        .iter()
        .map(|x| {
            let v = x.to_f64();
            v * v
        })
        .sum::<f64>()
        .sqrt()
}

/// Fraction of elements that are NaN (always 0 for integer dtypes).
pub fn nan_fraction<T: Element>(t: &Tensor<T>) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    let nans = t.as_slice().iter().filter(|x| x.to_f64().is_nan()).count();
    nans as f64 / t.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_axis0_sums() {
        let t = Tensor::from_vec((1..=6).map(|i| i as f64).collect(), &[3, 2]).unwrap();
        let s = reduce_axis0(&t, 0.0, |a, b| a + b).unwrap();
        assert_eq!(s.shape(), &[2]);
        assert_eq!(s.as_slice(), &[9.0, 12.0]);
    }

    #[test]
    fn mean_axis0_matches_manual() {
        let t = Tensor::from_vec(vec![1.0_f32, 3.0, 5.0, 7.0], &[2, 2]).unwrap();
        let m = mean_axis0(&t).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn argmax_ignores_nan() {
        let t = Tensor::from_vec(vec![1.0_f64, f64::NAN, 5.0, 3.0], &[4]).unwrap();
        assert_eq!(argmax(&t), Some(2));
        let all_nan = Tensor::from_vec(vec![f64::NAN; 3], &[3]).unwrap();
        assert_eq!(argmax(&all_nan), None);
        let empty = Tensor::<f64>::zeros(&[0]);
        assert_eq!(argmax(&empty), None);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::from_vec(vec![2, 7, 7, 1_i32], &[4]).unwrap();
        assert_eq!(argmax(&t), Some(1));
    }

    #[test]
    fn clamp_limits() {
        let mut t = Tensor::from_vec(vec![-5.0_f32, 0.5, 9.0], &[3]).unwrap();
        clamp_inplace(&mut t, 0.0, 1.0);
        assert_eq!(t.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_vec(vec![3.0_f64, 4.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0_f64, 2.0], &[2]).unwrap();
        assert_eq!(dot(&a, &b).unwrap(), 11.0);
        assert_eq!(l2_norm(&a), 5.0);
        let c = Tensor::<f64>::zeros(&[3]);
        assert!(dot(&a, &c).is_err());
    }

    #[test]
    fn nan_fraction_counts() {
        let t = Tensor::from_vec(vec![1.0_f64, f64::NAN, 3.0, f64::NAN], &[4]).unwrap();
        assert_eq!(nan_fraction(&t), 0.5);
        let i = Tensor::from_vec(vec![1, 2, 3_i64], &[3]).unwrap();
        assert_eq!(nan_fraction(&i), 0.0);
    }
}
