//! Multi-tenant job scheduler over the streaming executor.
//!
//! The paper frames readiness processing as shared facility
//! infrastructure: many users submit heterogeneous preprocessing jobs
//! to one service. This crate supplies the missing layer between
//! callers and `Pipeline`/`run_batch_streaming` — a [`Scheduler`] that
//! accepts [`JobSpec`]s (tenant id, priority class, deadline hint,
//! cost estimate, boxed pipeline invocation) into per-tenant bounded
//! queues and dispatches them onto a worker pool driving
//! `drai_core::executor`.
//!
//! Design:
//!
//! * **Weighted-fair dequeue** — deficit round-robin across tenants:
//!   each visit grants `quantum × weight` deficit, a tenant is served
//!   while its deficit covers the head job's cost, and within a tenant
//!   the highest priority class preempts at dequeue. Two equal-weight
//!   tenants submitting equal-cost jobs complete within ±1 job of each
//!   other at every dispatch step; a weight-2 tenant gets 2× the
//!   throughput.
//! * **Admission control** — typed [`Rejected`] errors
//!   (`Backpressure` on queue depth, `QuotaExceeded` on token-bucket
//!   rate limits or outstanding-cost quotas, `DeadlineInfeasible` when
//!   the projected completion under current load misses the hint);
//!   never a silent drop.
//! * **Load shedding** — when total queued cost exceeds the configured
//!   watermark, jobs are shed lowest-priority-class first, then
//!   furthest deadline, then most recently submitted; every victim's
//!   [`JobHandle`] observes a typed [`JobOutcome::Shed`].
//! * **Deterministic time** — rate limits, deadlines and wait/run
//!   latencies read an injectable [`MonitorClock`]
//!   (`WallMonitorClock` in production, `ManualClock` in tests), so
//!   every fairness and shedding property is bitwise reproducible.
//! * **Cancellation** — each job carries a `drai_core::CancelToken`;
//!   cancelling a queued job purges it at dequeue, cancelling a
//!   running job makes `run_batch_streaming_cancellable` drain and the
//!   outcome report [`JobOutcome::Cancelled`].
//!
//! Telemetry (registered in `drai_telemetry::METRIC_FAMILIES`):
//! `sched.submitted`/`sched.admitted`/`sched.rejected.*` admission
//! counters, `sched.shed`/`sched.dispatched`/`sched.completed`/
//! `sched.failed`/`sched.cancelled` lifecycle counters, `sched.queued`
//! / `sched.queued_cost` / `sched.inflight_cost` /
//! `sched.tenant.<tenant>.queued` gauges, `sched.wait_ns` /
//! `sched.run_ns` histograms and a `sched.job.<tenant>` span per
//! dispatch. [`scheduler_health_spec`] packages the overload and
//! stall signals as `drai_telemetry::monitor` health rules.

#![forbid(unsafe_code)]

use drai_core::{CancelToken, ExecutorConfig};
use drai_telemetry::monitor::{Condition, HealthSpec, MonitorClock, WallMonitorClock};
use drai_telemetry::{Gauge, Registry, TraceContext};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Priority class of a job. Within one tenant the highest class
/// present is always dequeued first (preemption at dequeue); under
/// overload the scheduler sheds the lowest class first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk/backfill work: first to be shed, last to be dequeued.
    Batch,
    /// Default class.
    Normal,
    /// Latency-sensitive work: dequeued ahead of everything else.
    Interactive,
}

impl Priority {
    /// Queue index, 0 = lowest class.
    fn index(self) -> usize {
        match self {
            Priority::Batch => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }

    /// Stable lowercase label (used in transcripts).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        }
    }
}

/// What a job closure gets from the scheduler: the executor
/// configuration to drive pipelines with and the cooperative
/// cancellation token to thread into
/// `run_batch_streaming_cancellable`.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// Executor tuning the scheduler was configured with.
    pub exec: ExecutorConfig,
    /// Fires when the job is cancelled; long-running work should pass
    /// it to the executor (or poll it) so shedding takes effect.
    pub cancel: CancelToken,
}

/// Result payload of a successful job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobOutput {
    /// Items the job processed (batch members, shots, patients, ...).
    pub items: u64,
    /// Free-form result description for logs/transcripts.
    pub detail: String,
}

/// The boxed pipeline invocation a [`JobSpec`] carries.
pub type JobFn = Box<dyn FnOnce(&JobContext) -> Result<JobOutput, String> + Send + 'static>;

/// A job submission: who, how urgent, how big, and what to run.
pub struct JobSpec {
    tenant: String,
    label: String,
    priority: Priority,
    deadline: Option<Duration>,
    cost: u64,
    run: JobFn,
}

impl JobSpec {
    /// New job for `tenant` with a display `label`, an abstract `cost`
    /// estimate (clamped to ≥ 1; the unit is whatever the deployment's
    /// quotas are denominated in — e.g. batch members) and the closure
    /// to run. Defaults to [`Priority::Normal`] and no deadline.
    pub fn new(
        tenant: impl Into<String>,
        label: impl Into<String>,
        cost: u64,
        run: impl FnOnce(&JobContext) -> Result<JobOutput, String> + Send + 'static,
    ) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            label: label.into(),
            priority: Priority::Normal,
            deadline: None,
            cost: cost.max(1),
            run: Box::new(run),
        }
    }

    /// Set the priority class.
    pub fn priority(mut self, p: Priority) -> JobSpec {
        self.priority = p;
        self
    }

    /// Set a completion-deadline hint relative to submission time.
    /// Admission rejects `DeadlineInfeasible` when projected queue
    /// drain under current load already misses it.
    pub fn deadline(mut self, d: Duration) -> JobSpec {
        self.deadline = Some(d);
        self
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("tenant", &self.tenant)
            .field("label", &self.label)
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// Typed admission rejection. Every rejected submission surfaces one
/// of these — the scheduler never drops work silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant's bounded queue is full.
    Backpressure {
        /// Sanitized tenant id.
        tenant: String,
        /// Jobs currently queued for the tenant.
        queued: usize,
        /// The tenant's `max_queued` limit.
        limit: usize,
    },
    /// The tenant's token bucket or outstanding-cost quota cannot
    /// cover the job's cost.
    QuotaExceeded {
        /// Sanitized tenant id.
        tenant: String,
        /// Cost the job needs admitted.
        needed: u64,
        /// Cost currently available under the limiting quota.
        available: u64,
    },
    /// Projected completion under current queued + in-flight load
    /// already misses the job's deadline hint.
    DeadlineInfeasible {
        /// Sanitized tenant id.
        tenant: String,
        /// Absolute deadline (ns on the scheduler clock).
        deadline_ns: u64,
        /// Projected completion (ns on the scheduler clock).
        projected_ns: u64,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Backpressure {
                tenant,
                queued,
                limit,
            } => write!(
                f,
                "backpressure: tenant {tenant} queue full ({queued}/{limit})"
            ),
            Rejected::QuotaExceeded {
                tenant,
                needed,
                available,
            } => write!(
                f,
                "quota exceeded: tenant {tenant} needs cost {needed}, {available} available"
            ),
            Rejected::DeadlineInfeasible {
                tenant,
                deadline_ns,
                projected_ns,
            } => write!(
                f,
                "deadline infeasible: tenant {tenant} deadline {deadline_ns}ns, projected {projected_ns}ns"
            ),
        }
    }
}

impl std::error::Error for Rejected {}

/// Terminal state of an admitted job, observed via [`JobHandle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The closure returned `Ok`.
    Completed(JobOutput),
    /// The closure returned `Err` or panicked.
    Failed {
        /// The error string (panics become `"job panicked"`).
        error: String,
    },
    /// The scheduler shed the job under overload before it ran.
    Shed {
        /// Total queued cost at the shedding decision.
        queued_cost: u64,
        /// The configured shed watermark that was exceeded.
        watermark: u64,
    },
    /// The job's [`CancelToken`] fired (while queued, or while running
    /// and the closure reported the cancellation).
    Cancelled,
}

/// Caller-side handle to one admitted job.
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    tenant: String,
    cancel: CancelToken,
    rx: mpsc::Receiver<JobOutcome>,
    cached: Option<JobOutcome>,
}

impl JobHandle {
    /// Scheduler-assigned job id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sanitized tenant the job was admitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Fire the job's [`CancelToken`]. Queued jobs are purged at
    /// dequeue; running jobs drain cooperatively.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Outcome if already available, without blocking.
    pub fn try_outcome(&mut self) -> Option<JobOutcome> {
        if self.cached.is_none() {
            if let Ok(out) = self.rx.try_recv() {
                self.cached = Some(out);
            }
        }
        self.cached.clone()
    }

    /// Block until the outcome arrives. A scheduler dropped with the
    /// job still queued yields a `Failed` outcome (never a hang).
    pub fn wait(self) -> JobOutcome {
        if let Some(out) = self.cached {
            return out;
        }
        self.rx.recv().unwrap_or(JobOutcome::Failed {
            error: "scheduler dropped before the job ran".to_string(),
        })
    }
}

/// Token-bucket rate limit: sustained `cost_per_sec` with bursts up to
/// `burst` cost units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admission rate in cost units per second.
    pub cost_per_sec: u64,
    /// Bucket capacity in cost units (also the initial fill).
    pub burst: u64,
}

/// Per-tenant configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    id: String,
    weight: u32,
    max_queued: usize,
    rate: Option<RateLimit>,
    cost_quota: Option<u64>,
}

impl TenantConfig {
    /// New tenant with weight 1, a 64-job queue bound, no rate limit
    /// and no cost quota. The id is sanitized to `[a-z0-9_]+` so it is
    /// always a single valid metric-name segment.
    pub fn new(id: impl Into<String>) -> TenantConfig {
        TenantConfig {
            id: sanitize_tenant(&id.into()),
            weight: 1,
            max_queued: 64,
            rate: None,
            cost_quota: None,
        }
    }

    /// Deficit-round-robin weight (clamped to ≥ 1): a weight-2 tenant
    /// is granted twice the deficit per visit, i.e. 2× throughput
    /// under contention.
    pub fn weight(mut self, w: u32) -> TenantConfig {
        self.weight = w.max(1);
        self
    }

    /// Bound on queued (not yet dispatched) jobs; submissions beyond
    /// it are rejected with [`Rejected::Backpressure`].
    pub fn max_queued(mut self, n: usize) -> TenantConfig {
        self.max_queued = n.max(1);
        self
    }

    /// Token-bucket rate limit on admitted cost.
    pub fn rate(mut self, r: RateLimit) -> TenantConfig {
        self.rate = Some(r);
        self
    }

    /// Cap on outstanding (queued + in-flight) cost.
    pub fn cost_quota(mut self, q: u64) -> TenantConfig {
        self.cost_quota = Some(q);
        self
    }

    /// Sanitized tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

/// Scheduler-wide configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Deficit granted per tenant visit is `quantum × weight` (clamped
    /// to ≥ 1). With `quantum == job cost`, equal-weight tenants
    /// alternate strictly.
    pub quantum: u64,
    /// Total in-flight cost admitted to dispatch at once. A job whose
    /// cost alone exceeds this still dispatches when nothing is in
    /// flight (no permanent starvation of big jobs).
    pub max_inflight_cost: u64,
    /// Total queued cost above which load shedding starts.
    pub shed_watermark: u64,
    /// Projected ns to retire one cost unit; the deadline-feasibility
    /// model is `(queued + inflight + new) × cost_ns_per_unit`.
    pub cost_ns_per_unit: u64,
    /// Executor tuning handed to every job via [`JobContext`].
    pub exec: ExecutorConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: 1,
            max_inflight_cost: 64,
            shed_watermark: 256,
            cost_ns_per_unit: 1_000_000,
            exec: ExecutorConfig::default(),
        }
    }
}

/// Integer token bucket on the scheduler clock. Tokens are stored
/// scaled by 1e9 so refill is exact integer math — bitwise
/// deterministic under `ManualClock`.
#[derive(Debug)]
struct TokenBucket {
    scaled: u128,
    cost_per_sec: u64,
    burst: u64,
    last_ns: u64,
}

const TOKEN_SCALE: u128 = 1_000_000_000;

impl TokenBucket {
    fn new(limit: RateLimit, now_ns: u64) -> TokenBucket {
        TokenBucket {
            scaled: limit.burst as u128 * TOKEN_SCALE,
            cost_per_sec: limit.cost_per_sec,
            burst: limit.burst,
            last_ns: now_ns,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        let added = elapsed as u128 * self.cost_per_sec as u128;
        let cap = self.burst as u128 * TOKEN_SCALE;
        self.scaled = (self.scaled + added).min(cap);
    }

    fn available(&self) -> u64 {
        (self.scaled / TOKEN_SCALE) as u64
    }

    fn try_spend(&mut self, cost: u64) -> bool {
        let need = cost as u128 * TOKEN_SCALE;
        if self.scaled >= need {
            self.scaled -= need;
            true
        } else {
            false
        }
    }
}

/// One admitted, not-yet-dispatched job.
struct QueuedJob {
    id: u64,
    label: String,
    priority: Priority,
    cost: u64,
    deadline_ns: Option<u64>,
    submitted_ns: u64,
    run: JobFn,
    cancel: CancelToken,
    tx: mpsc::Sender<JobOutcome>,
}

struct TenantState {
    cfg: TenantConfig,
    /// One FIFO per priority class, indexed by [`Priority::index`].
    queues: [VecDeque<QueuedJob>; 3],
    deficit: u64,
    /// Whether the next DRR visit should grant fresh deficit.
    fresh_visit: bool,
    bucket: Option<TokenBucket>,
    /// Queued + in-flight cost, charged against `cost_quota`.
    outstanding: u64,
}

impl TenantState {
    fn new(cfg: TenantConfig, now_ns: u64) -> TenantState {
        let bucket = cfg.rate.map(|r| TokenBucket::new(r, now_ns));
        TenantState {
            cfg,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            deficit: 0,
            fresh_visit: true,
            bucket,
            outstanding: 0,
        }
    }

    fn queued_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Highest nonempty priority queue (preemption at dequeue).
    fn head_class(&self) -> Option<usize> {
        (0..3).rev().find(|&pi| !self.queues[pi].is_empty())
    }
}

struct State {
    tenants: BTreeMap<String, TenantState>,
    /// Tenants with queued work, in DRR visiting order.
    active: Vec<String>,
    cursor: usize,
    next_id: u64,
    inflight_cost: u64,
    queued_cost_total: u64,
}

enum Taken {
    Run(QueuedJob, String),
    CancelledInQueue(QueuedJob, String),
}

/// One dispatch, as recorded by [`Scheduler::dispatch_next`] — the
/// transcript material the fairness tests compare bitwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatched {
    /// Scheduler-assigned job id.
    pub id: u64,
    /// Sanitized tenant id.
    pub tenant: String,
    /// Caller-supplied label.
    pub label: String,
    /// Priority class at submission.
    pub priority: Priority,
    /// Admitted cost estimate.
    pub cost: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl std::fmt::Display for Dispatched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let outcome = match &self.outcome {
            JobOutcome::Completed(out) => format!("completed(items={})", out.items),
            JobOutcome::Failed { error } => format!("failed({error})"),
            JobOutcome::Shed {
                queued_cost,
                watermark,
            } => format!("shed({queued_cost}>{watermark})"),
            JobOutcome::Cancelled => "cancelled".to_string(),
        };
        write!(
            f,
            "#{} {}/{} {} cost={} {}",
            self.id,
            self.tenant,
            self.label,
            self.priority.label(),
            self.cost,
            outcome
        )
    }
}

/// Multi-tenant weighted-fair scheduler; see the crate docs for the
/// model. Cheap to share via `Arc` (workers, submitters and monitors
/// hold clones of the same instance).
pub struct Scheduler {
    cfg: SchedulerConfig,
    clock: Arc<dyn MonitorClock>,
    state: Mutex<State>,
    wakers: Mutex<Vec<mpsc::Sender<()>>>,
    stopping: AtomicBool,
}

/// Map an arbitrary tenant string onto one lowercase `[a-z0-9_]+`
/// metric segment (empty input becomes `anon`), so
/// `sched.tenant.<t>.queued` and `sched.job.<t>` always satisfy the
/// telemetry naming grammar.
fn sanitize_tenant(raw: &str) -> String {
    let mapped: String = raw
        .chars()
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_') => c,
            _ => '_',
        })
        .collect();
    if mapped.is_empty() {
        "anon".to_string()
    } else {
        mapped
    }
}

/// Per-tenant queue-depth gauge (`sched.tenant.<tenant>.queued`).
fn tenant_queued_gauge(registry: &Registry, tenant: &str) -> Arc<Gauge> {
    registry.gauge(&format!("sched.tenant.{tenant}.queued"))
}

/// Default monitor health rules for a scheduler under `cfg`:
///
/// - `sched_overloaded`: the `sched.queued_cost` window watermark
///   exceeded the shed watermark — load shedding is (about to be)
///   active. `MonitorReport::diagnose` names the saturated tenant from
///   the `sched.tenant.<t>.queued` series.
/// - `sched_stalled`: `sched.completed` went 8 consecutive samples
///   without a job finishing while work was pending.
pub fn scheduler_health_spec(cfg: &SchedulerConfig) -> HealthSpec {
    let watermark = cfg.shed_watermark.min(i64::MAX as u64) as i64;
    HealthSpec::new()
        .rule(
            "sched_overloaded",
            "sched.queued_cost",
            Condition::GaugeAbove(watermark),
        )
        .rule("sched_stalled", "sched.completed", Condition::StallFor(8))
}

impl Scheduler {
    /// Scheduler on the wall clock.
    pub fn new(cfg: SchedulerConfig) -> Scheduler {
        Scheduler::with_clock(cfg, Arc::new(WallMonitorClock::new()))
    }

    /// Scheduler on an injected clock (tests pass
    /// `drai_telemetry::monitor::ManualClock` for bitwise-deterministic
    /// rate-limit, deadline and latency behaviour).
    pub fn with_clock(cfg: SchedulerConfig, clock: Arc<dyn MonitorClock>) -> Scheduler {
        Scheduler {
            cfg,
            clock,
            state: Mutex::new(State {
                tenants: BTreeMap::new(),
                active: Vec::new(),
                cursor: 0,
                next_id: 0,
                inflight_cost: 0,
                queued_cost_total: 0,
            }),
            wakers: Mutex::new(Vec::new()),
            stopping: AtomicBool::new(false),
        }
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Register (or replace the configuration of) a tenant. Unknown
    /// tenants are auto-registered at first submit with
    /// `TenantConfig::new` defaults; explicit registration is how
    /// weights, queue bounds, rate limits and quotas are set.
    pub fn register_tenant(&self, cfg: TenantConfig) {
        let now = self.clock.now_ns();
        let mut st = self.state.lock();
        match st.tenants.get_mut(&cfg.id) {
            Some(ts) => {
                ts.bucket = cfg.rate.map(|r| TokenBucket::new(r, now));
                ts.cfg = cfg;
            }
            None => {
                let id = cfg.id.clone();
                st.tenants.insert(id, TenantState::new(cfg, now));
            }
        }
    }

    /// Jobs queued (admitted, not yet dispatched) across all tenants.
    pub fn pending_jobs(&self) -> usize {
        let st = self.state.lock();
        st.tenants.values().map(TenantState::queued_len).sum()
    }

    /// Jobs queued for one tenant (sanitized id).
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        let st = self.state.lock();
        st.tenants
            .get(&sanitize_tenant(tenant))
            .map_or(0, TenantState::queued_len)
    }

    /// Submit a job. `Ok` returns a [`JobHandle`] whose outcome is
    /// guaranteed to arrive (completed, failed, shed or cancelled);
    /// `Err` is a typed [`Rejected`]. Either way nothing is ever
    /// dropped silently.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Rejected> {
        let registry = Registry::current();
        registry.counter("sched.submitted").incr();
        let now = self.clock.now_ns();
        let tenant = sanitize_tenant(&spec.tenant);
        let (tx, rx) = mpsc::channel();
        let cancel = CancelToken::new();
        let cost = spec.cost;

        let admitted: Result<(u64, Vec<(QueuedJob, u64)>), Rejected> = {
            let mut st = self.state.lock();
            let st = &mut *st;
            if !st.tenants.contains_key(&tenant) {
                st.tenants.insert(
                    tenant.clone(),
                    TenantState::new(TenantConfig::new(tenant.clone()), now),
                );
            }
            let ts = st.tenants.get_mut(&tenant).expect("tenant inserted above");

            let queued = ts.queued_len();
            if queued >= ts.cfg.max_queued {
                Err(Rejected::Backpressure {
                    tenant: tenant.clone(),
                    queued,
                    limit: ts.cfg.max_queued,
                })
            } else if ts
                .bucket
                .as_mut()
                .map(|b| {
                    b.refill(now);
                    b.available()
                })
                .is_some_and(|avail| avail < cost)
            {
                let available = ts.bucket.as_ref().map_or(0, TokenBucket::available);
                Err(Rejected::QuotaExceeded {
                    tenant: tenant.clone(),
                    needed: cost,
                    available,
                })
            } else if ts.cfg.cost_quota.is_some_and(|q| ts.outstanding + cost > q) {
                let quota = ts.cfg.cost_quota.unwrap_or(0);
                Err(Rejected::QuotaExceeded {
                    tenant: tenant.clone(),
                    needed: ts.outstanding + cost,
                    available: quota,
                })
            } else if let Some(infeasible) = spec.deadline.and_then(|d| {
                let deadline_ns =
                    now.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
                let backlog = st.queued_cost_total + st.inflight_cost + cost;
                let projected_ns =
                    now.saturating_add(backlog.saturating_mul(self.cfg.cost_ns_per_unit));
                (projected_ns > deadline_ns).then_some((deadline_ns, projected_ns))
            }) {
                Err(Rejected::DeadlineInfeasible {
                    tenant: tenant.clone(),
                    deadline_ns: infeasible.0,
                    projected_ns: infeasible.1,
                })
            } else {
                if let Some(b) = ts.bucket.as_mut() {
                    b.try_spend(cost);
                }
                let id = st.next_id;
                st.next_id += 1;
                let deadline_ns = spec
                    .deadline
                    .map(|d| now.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)));
                ts.queues[spec.priority.index()].push_back(QueuedJob {
                    id,
                    label: spec.label,
                    priority: spec.priority,
                    cost,
                    deadline_ns,
                    submitted_ns: now,
                    run: spec.run,
                    cancel: cancel.clone(),
                    tx: tx.clone(),
                });
                ts.outstanding += cost;
                st.queued_cost_total += cost;
                if !st.active.iter().any(|t| t == &tenant) {
                    st.active.push(tenant.clone());
                }
                registry.gauge("sched.queued").add(1);
                registry.gauge("sched.queued_cost").add(cost as i64);
                tenant_queued_gauge(&registry, &tenant).add(1);

                // Overload: shed lowest class, then furthest deadline,
                // then most recently submitted, until under watermark.
                let mut victims = Vec::new();
                while st.queued_cost_total > self.cfg.shed_watermark {
                    let Some((vt, pi, pos)) = pick_shed_victim(st) else {
                        break;
                    };
                    let queued_cost_at_decision = st.queued_cost_total;
                    let Some(vts) = st.tenants.get_mut(&vt) else {
                        break;
                    };
                    let Some(job) = vts.queues[pi].remove(pos) else {
                        break;
                    };
                    vts.outstanding = vts.outstanding.saturating_sub(job.cost);
                    st.queued_cost_total = st.queued_cost_total.saturating_sub(job.cost);
                    registry.gauge("sched.queued").add(-1);
                    registry.gauge("sched.queued_cost").add(-(job.cost as i64));
                    tenant_queued_gauge(&registry, &vt).add(-1);
                    victims.push((job, queued_cost_at_decision));
                }
                Ok((id, victims))
            }
        };

        match admitted {
            Ok((id, victims)) => {
                registry.counter("sched.admitted").incr();
                for (job, queued_cost) in victims {
                    registry.counter("sched.shed").incr();
                    let _ = job.tx.send(JobOutcome::Shed {
                        queued_cost,
                        watermark: self.cfg.shed_watermark,
                    });
                }
                let wakers = self.wakers.lock().clone();
                for w in wakers {
                    let _ = w.send(());
                }
                Ok(JobHandle {
                    id,
                    tenant,
                    cancel,
                    rx,
                    cached: None,
                })
            }
            Err(rej) => {
                match &rej {
                    Rejected::Backpressure { .. } => {
                        registry.counter("sched.rejected.backpressure").incr()
                    }
                    Rejected::QuotaExceeded { .. } => {
                        registry.counter("sched.rejected.quota").incr()
                    }
                    Rejected::DeadlineInfeasible { .. } => {
                        registry.counter("sched.rejected.deadline").incr()
                    }
                }
                Err(rej)
            }
        }
    }

    /// Deficit-round-robin dequeue. Returns `None` when no queued job
    /// can run (all queues empty, or the in-flight gate blocks every
    /// head).
    fn take_runnable(&self, st: &mut State) -> Option<Taken> {
        let gate = |cost: u64, inflight: u64| {
            inflight == 0 || inflight + cost <= self.cfg.max_inflight_cost
        };
        // Termination precheck: some tenant's head must pass the
        // in-flight gate, otherwise deficit growth can never help.
        let inflight = st.inflight_cost;
        let any_pass = st.active.iter().any(|t| {
            st.tenants.get(t).is_some_and(|ts| {
                ts.head_class()
                    .and_then(|pi| ts.queues[pi].front())
                    .is_some_and(|job| gate(job.cost, inflight))
            })
        });
        if !any_pass {
            return None;
        }
        loop {
            if st.active.is_empty() {
                return None;
            }
            if st.cursor >= st.active.len() {
                st.cursor = 0;
            }
            let tid = st.active[st.cursor].clone();
            let Some(ts) = st.tenants.get_mut(&tid) else {
                st.active.remove(st.cursor);
                continue;
            };
            let Some(pi) = ts.head_class() else {
                // Drained tenant: reset its DRR state and retire it
                // from the active ring.
                ts.deficit = 0;
                ts.fresh_visit = true;
                st.active.remove(st.cursor);
                continue;
            };
            let head_cancelled = ts.queues[pi]
                .front()
                .is_some_and(|j| j.cancel.is_cancelled());
            if head_cancelled {
                if let Some(job) = ts.queues[pi].pop_front() {
                    // Purged, not served: no deficit charge.
                    ts.outstanding = ts.outstanding.saturating_sub(job.cost);
                    st.queued_cost_total = st.queued_cost_total.saturating_sub(job.cost);
                    return Some(Taken::CancelledInQueue(job, tid));
                }
                continue;
            }
            let head_cost = ts.queues[pi].front().map_or(1, |j| j.cost);
            if ts.fresh_visit {
                ts.deficit = ts
                    .deficit
                    .saturating_add(self.cfg.quantum.max(1).saturating_mul(ts.cfg.weight as u64));
                ts.fresh_visit = false;
            }
            if ts.deficit >= head_cost {
                if gate(head_cost, st.inflight_cost) {
                    if let Some(job) = ts.queues[pi].pop_front() {
                        ts.deficit -= head_cost;
                        st.queued_cost_total = st.queued_cost_total.saturating_sub(job.cost);
                        st.inflight_cost += job.cost;
                        return Some(Taken::Run(job, tid));
                    }
                }
                // Gate-blocked with sufficient deficit: skip without a
                // fresh grant so the deficit does not grow unboundedly
                // while dispatch is throttled.
            } else {
                ts.fresh_visit = true;
            }
            st.cursor = (st.cursor + 1) % st.active.len();
        }
    }

    /// Dequeue and run one job on the calling thread. This is the
    /// deterministic stepping primitive the fairness tests drive;
    /// workers call it in a loop. Cancelled-while-queued jobs are
    /// purged (with a [`JobOutcome::Cancelled`] sent to their handle)
    /// without counting as a dispatch step.
    pub fn dispatch_next(&self) -> Option<Dispatched> {
        let registry = Registry::current();
        loop {
            let taken = {
                let mut st = self.state.lock();
                self.take_runnable(&mut st)
            };
            match taken {
                None => return None,
                Some(Taken::CancelledInQueue(job, tenant)) => {
                    registry.counter("sched.cancelled").incr();
                    registry.gauge("sched.queued").add(-1);
                    registry.gauge("sched.queued_cost").add(-(job.cost as i64));
                    tenant_queued_gauge(&registry, &tenant).add(-1);
                    let _ = job.tx.send(JobOutcome::Cancelled);
                }
                Some(Taken::Run(job, tenant)) => {
                    registry.gauge("sched.queued").add(-1);
                    registry.gauge("sched.queued_cost").add(-(job.cost as i64));
                    registry.gauge("sched.inflight_cost").add(job.cost as i64);
                    tenant_queued_gauge(&registry, &tenant).add(-1);
                    return Some(self.execute(job, tenant, &registry));
                }
            }
        }
    }

    /// Run one dispatched job to completion and settle its accounting.
    fn execute(&self, job: QueuedJob, tenant: String, registry: &Registry) -> Dispatched {
        registry.counter("sched.dispatched").incr();
        let dispatched_ns = self.clock.now_ns();
        registry
            .histogram("sched.wait_ns")
            .record(dispatched_ns.saturating_sub(job.submitted_ns));
        let QueuedJob {
            id,
            label,
            priority,
            cost,
            run,
            cancel,
            tx,
            ..
        } = job;
        let ctx = JobContext {
            exec: self.cfg.exec.clone(),
            cancel: cancel.clone(),
        };
        let result = {
            let span = registry.span(format!("sched.job.{tenant}"));
            span.add_items(1);
            let _in_span = span.enter();
            catch_unwind(AssertUnwindSafe(|| (run)(&ctx)))
        };
        registry
            .histogram("sched.run_ns")
            .record(self.clock.now_ns().saturating_sub(dispatched_ns));
        let outcome = match result {
            Err(_payload) => JobOutcome::Failed {
                error: "job panicked".to_string(),
            },
            Ok(Err(_)) if cancel.is_cancelled() => JobOutcome::Cancelled,
            Ok(Err(error)) => JobOutcome::Failed { error },
            Ok(Ok(output)) => JobOutcome::Completed(output),
        };
        match &outcome {
            JobOutcome::Completed(_) => registry.counter("sched.completed").incr(),
            JobOutcome::Failed { .. } => registry.counter("sched.failed").incr(),
            JobOutcome::Cancelled => registry.counter("sched.cancelled").incr(),
            JobOutcome::Shed { .. } => registry.counter("sched.shed").incr(),
        }
        {
            let mut st = self.state.lock();
            st.inflight_cost = st.inflight_cost.saturating_sub(cost);
            if let Some(ts) = st.tenants.get_mut(&tenant) {
                ts.outstanding = ts.outstanding.saturating_sub(cost);
            }
        }
        registry.gauge("sched.inflight_cost").add(-(cost as i64));
        let _ = tx.send(outcome.clone());
        Dispatched {
            id,
            tenant,
            label,
            priority,
            cost,
            outcome,
        }
    }

    /// Drain the queues on the calling thread, returning the dispatch
    /// transcript in order. Deterministic under `ManualClock` — this
    /// is what the fairness properties and the bench scenarios drive.
    pub fn run_until_idle(&self) -> Vec<Dispatched> {
        let mut transcript = Vec::new();
        while let Some(d) = self.dispatch_next() {
            transcript.push(d);
        }
        transcript
    }

    /// Spawn `n` worker threads (clamped to ≥ 1) that drain the queues
    /// until [`Scheduler::shutdown`]. Workers attach the caller's
    /// `TraceContext` captured *now*, so job telemetry lands in the
    /// submitting registry regardless of thread scheduling.
    pub fn start_workers(self: &Arc<Self>, n: usize) -> WorkerPool {
        let context = TraceContext::current();
        let mut handles = Vec::new();
        for _ in 0..n.max(1) {
            let sched = Arc::clone(self);
            let ctx = context.clone();
            let (wake_tx, wake_rx) = mpsc::channel::<()>();
            self.wakers.lock().push(wake_tx);
            handles.push(std::thread::spawn(move || {
                let _attached = ctx.as_ref().map(TraceContext::attach);
                loop {
                    if sched.dispatch_next().is_some() {
                        continue;
                    }
                    if sched.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    // Parked until a submit wakes us (or a short poll
                    // tick passes, covering gate-released work).
                    let _ = wake_rx.recv_timeout(Duration::from_millis(5));
                }
            }));
        }
        WorkerPool { handles }
    }

    /// Ask workers to exit once the queues are idle and wake them.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let wakers = self.wakers.lock().clone();
        for w in wakers {
            let _ = w.send(());
        }
    }
}

/// Pick the next shedding victim: lowest priority class first, then
/// furthest deadline (no deadline counts as furthest), then most
/// recently submitted. Returns `(tenant, priority index, position)`.
fn pick_shed_victim(st: &State) -> Option<(String, usize, usize)> {
    let mut best: Option<(String, usize, usize, u64, u64)> = None;
    for (tid, ts) in &st.tenants {
        for (pi, queue) in ts.queues.iter().enumerate() {
            for (pos, job) in queue.iter().enumerate() {
                let deadline_key = job.deadline_ns.unwrap_or(u64::MAX);
                let better = match &best {
                    None => true,
                    Some((_, bpi, _, bdeadline, bid)) => {
                        (
                            pi,
                            std::cmp::Reverse(deadline_key),
                            std::cmp::Reverse(job.id),
                        ) < (*bpi, std::cmp::Reverse(*bdeadline), std::cmp::Reverse(*bid))
                    }
                };
                if better {
                    best = Some((tid.clone(), pi, pos, deadline_key, job.id));
                }
            }
        }
    }
    best.map(|(tid, pi, pos, _, _)| (tid, pi, pos))
}

/// Handle to the threads from [`Scheduler::start_workers`].
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no threads.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Wait for every worker to exit (call [`Scheduler::shutdown`]
    /// first, or this blocks until someone does).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drai_telemetry::monitor::ManualClock;
    use drai_telemetry::{Registry, Snapshot, TraceContext};

    fn in_registry<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
        let reg = Registry::new();
        let out = TraceContext::root(&reg).scope(f);
        (out, reg.snapshot())
    }

    fn ok_job(items: u64) -> impl FnOnce(&JobContext) -> Result<JobOutput, String> {
        move |_ctx| {
            Ok(JobOutput {
                items,
                detail: String::new(),
            })
        }
    }

    fn manual_sched(cfg: SchedulerConfig) -> (Arc<Scheduler>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let sched = Arc::new(Scheduler::with_clock(cfg, clock.clone()));
        (sched, clock)
    }

    fn counter(snap: &Snapshot, name: &str) -> u64 {
        snap.counters.get(name).copied().unwrap_or(0)
    }

    #[test]
    fn sanitizes_tenant_ids() {
        assert_eq!(sanitize_tenant("Climate Lab #7"), "climate_lab__7");
        assert_eq!(sanitize_tenant(""), "anon");
        assert_eq!(sanitize_tenant("ok_id9"), "ok_id9");
    }

    #[test]
    fn token_bucket_refills_deterministically() {
        let mut b = TokenBucket::new(
            RateLimit {
                cost_per_sec: 10,
                burst: 5,
            },
            0,
        );
        assert_eq!(b.available(), 5);
        assert!(b.try_spend(5));
        assert_eq!(b.available(), 0);
        assert!(!b.try_spend(1));
        // 100 ms at 10/s = 1 token, exactly.
        b.refill(100_000_000);
        assert_eq!(b.available(), 1);
        // Refill caps at burst.
        b.refill(100_000_000 + 10_000_000_000);
        assert_eq!(b.available(), 5);
    }

    #[test]
    fn backpressure_rejection_is_typed_and_counted() {
        let ((first, second), snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            sched.register_tenant(TenantConfig::new("t").max_queued(1));
            let first = sched.submit(JobSpec::new("t", "a", 1, ok_job(1)));
            let second = sched.submit(JobSpec::new("t", "b", 1, ok_job(1)));
            (first.is_ok(), second.err())
        });
        assert!(first);
        assert_eq!(
            second,
            Some(Rejected::Backpressure {
                tenant: "t".to_string(),
                queued: 1,
                limit: 1,
            })
        );
        assert_eq!(counter(&snap, "sched.submitted"), 2);
        assert_eq!(counter(&snap, "sched.admitted"), 1);
        assert_eq!(counter(&snap, "sched.rejected.backpressure"), 1);
    }

    #[test]
    fn rate_limit_rejects_then_recovers_on_manual_clock() {
        let (outcomes, snap) = in_registry(|| {
            let (sched, clock) = manual_sched(SchedulerConfig::default());
            sched.register_tenant(TenantConfig::new("t").rate(RateLimit {
                cost_per_sec: 2,
                burst: 4,
            }));
            let a = sched.submit(JobSpec::new("t", "a", 4, ok_job(1))).is_ok();
            let b = sched.submit(JobSpec::new("t", "b", 1, ok_job(1))).err();
            clock.advance(Duration::from_secs(1)); // +2 tokens
            let c = sched.submit(JobSpec::new("t", "c", 2, ok_job(1))).is_ok();
            (a, b, c)
        });
        assert!(outcomes.0);
        assert_eq!(
            outcomes.1,
            Some(Rejected::QuotaExceeded {
                tenant: "t".to_string(),
                needed: 1,
                available: 0,
            })
        );
        assert!(outcomes.2);
        assert_eq!(counter(&snap, "sched.rejected.quota"), 1);
    }

    #[test]
    fn cost_quota_covers_outstanding_work() {
        let (res, _snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            sched.register_tenant(TenantConfig::new("t").cost_quota(10));
            assert!(sched.submit(JobSpec::new("t", "a", 7, ok_job(1))).is_ok());
            let over = sched.submit(JobSpec::new("t", "b", 4, ok_job(1))).err();
            // Draining the queue releases the quota.
            sched.run_until_idle();
            let after = sched.submit(JobSpec::new("t", "c", 4, ok_job(1))).is_ok();
            (over, after)
        });
        assert_eq!(
            res.0,
            Some(Rejected::QuotaExceeded {
                tenant: "t".to_string(),
                needed: 11,
                available: 10,
            })
        );
        assert!(res.1);
    }

    #[test]
    fn infeasible_deadline_is_rejected_up_front() {
        let (rej, snap) = in_registry(|| {
            let cfg = SchedulerConfig {
                cost_ns_per_unit: 1_000_000, // 1 ms per cost unit
                ..SchedulerConfig::default()
            };
            let (sched, _clock) = manual_sched(cfg);
            assert!(sched
                .submit(JobSpec::new("t", "bulk", 50, ok_job(1)))
                .is_ok());
            // 51 ms projected backlog against a 10 ms deadline.
            sched
                .submit(
                    JobSpec::new("t", "urgent", 1, ok_job(1)).deadline(Duration::from_millis(10)),
                )
                .err()
        });
        match rej {
            Some(Rejected::DeadlineInfeasible {
                tenant,
                deadline_ns,
                projected_ns,
            }) => {
                assert_eq!(tenant, "t");
                assert_eq!(deadline_ns, 10_000_000);
                assert_eq!(projected_ns, 51_000_000);
            }
            other => panic!("expected DeadlineInfeasible, got {other:?}"),
        }
        assert_eq!(counter(&snap, "sched.rejected.deadline"), 1);
    }

    #[test]
    fn equal_weight_tenants_alternate_within_one_job() {
        let (transcript, snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig {
                max_inflight_cost: 1,
                shed_watermark: 10_000,
                ..SchedulerConfig::default()
            });
            sched.register_tenant(TenantConfig::new("a").max_queued(200));
            sched.register_tenant(TenantConfig::new("b").max_queued(200));
            for i in 0..100 {
                sched
                    .submit(JobSpec::new("a", format!("a{i}"), 1, ok_job(1)))
                    .unwrap();
                sched
                    .submit(JobSpec::new("b", format!("b{i}"), 1, ok_job(1)))
                    .unwrap();
            }
            sched.run_until_idle()
        });
        assert_eq!(transcript.len(), 200);
        let (mut done_a, mut done_b) = (0i64, 0i64);
        for d in &transcript {
            match d.tenant.as_str() {
                "a" => done_a += 1,
                "b" => done_b += 1,
                other => panic!("unexpected tenant {other}"),
            }
            assert!(
                (done_a - done_b).abs() <= 1,
                "fairness drift at step {}: a={done_a} b={done_b}",
                done_a + done_b
            );
        }
        assert_eq!(counter(&snap, "sched.completed"), 200);
        assert_eq!(counter(&snap, "sched.dispatched"), 200);
    }

    #[test]
    fn weight_two_tenant_gets_double_throughput() {
        let (transcript, _snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig {
                shed_watermark: 10_000,
                ..SchedulerConfig::default()
            });
            sched.register_tenant(TenantConfig::new("heavy").weight(2).max_queued(200));
            sched.register_tenant(TenantConfig::new("light").max_queued(200));
            for i in 0..60 {
                sched
                    .submit(JobSpec::new("heavy", format!("h{i}"), 1, ok_job(1)))
                    .unwrap();
                sched
                    .submit(JobSpec::new("light", format!("l{i}"), 1, ok_job(1)))
                    .unwrap();
            }
            sched.run_until_idle()
        });
        // While both tenants are backlogged (first 90 dispatches cover
        // 60 heavy + 30 light), heavy must run exactly 2x light.
        let heavy_in_first_90 = transcript[..90]
            .iter()
            .filter(|d| d.tenant == "heavy")
            .count();
        assert_eq!(heavy_in_first_90, 60);
        assert_eq!(transcript.len(), 120);
    }

    #[test]
    fn priority_preempts_at_dequeue_within_tenant() {
        let (transcript, _snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            sched
                .submit(JobSpec::new("t", "bulk", 1, ok_job(1)).priority(Priority::Batch))
                .unwrap();
            sched
                .submit(JobSpec::new("t", "norm", 1, ok_job(1)))
                .unwrap();
            sched
                .submit(JobSpec::new("t", "urgent", 1, ok_job(1)).priority(Priority::Interactive))
                .unwrap();
            sched.run_until_idle()
        });
        let order: Vec<&str> = transcript.iter().map(|d| d.label.as_str()).collect();
        assert_eq!(order, ["urgent", "norm", "bulk"]);
    }

    #[test]
    fn overload_sheds_lowest_priority_furthest_deadline_first() {
        let (res, snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig {
                shed_watermark: 3,
                ..SchedulerConfig::default()
            });
            let mut interactive = sched
                .submit(JobSpec::new("t", "keep", 1, ok_job(1)).priority(Priority::Interactive))
                .unwrap();
            let mut near = sched
                .submit(
                    JobSpec::new("t", "near", 1, ok_job(1))
                        .priority(Priority::Batch)
                        .deadline(Duration::from_secs(1)),
                )
                .unwrap();
            let mut far = sched
                .submit(
                    JobSpec::new("t", "far", 1, ok_job(1))
                        .priority(Priority::Batch)
                        .deadline(Duration::from_secs(60)),
                )
                .unwrap();
            // Fourth submission pushes queued cost to 4 > 3: exactly one
            // Batch job must be shed, and it must be `far`.
            let mut norm = sched
                .submit(JobSpec::new("t", "norm", 1, ok_job(1)))
                .unwrap();
            (
                interactive.try_outcome(),
                near.try_outcome(),
                far.try_outcome(),
                norm.try_outcome(),
            )
        });
        assert_eq!(res.0, None);
        assert_eq!(res.1, None);
        assert_eq!(
            res.2,
            Some(JobOutcome::Shed {
                queued_cost: 4,
                watermark: 3,
            })
        );
        assert_eq!(res.3, None);
        assert_eq!(counter(&snap, "sched.shed"), 1);
        // Zero silent drops: every submission is accounted for.
        assert_eq!(
            counter(&snap, "sched.submitted"),
            counter(&snap, "sched.admitted")
        );
    }

    #[test]
    fn cancelled_queued_job_is_purged_not_run() {
        let (res, snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            let handle = sched
                .submit(JobSpec::new("t", "doomed", 1, |_ctx| {
                    panic!("must never run")
                }))
                .unwrap();
            handle.cancel();
            let transcript = sched.run_until_idle();
            (handle.wait(), transcript.len())
        });
        assert_eq!(res.0, JobOutcome::Cancelled);
        assert_eq!(res.1, 0, "purge is not a dispatch step");
        assert_eq!(counter(&snap, "sched.cancelled"), 1);
        assert_eq!(counter(&snap, "sched.dispatched"), 0);
    }

    #[test]
    fn failed_and_panicking_jobs_report_typed_outcomes() {
        let (res, snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            let bad = sched
                .submit(JobSpec::new("t", "bad", 1, |_ctx| Err("boom".to_string())))
                .unwrap();
            let panicky = sched
                .submit(JobSpec::new(
                    "t",
                    "panic",
                    1,
                    |_ctx| -> Result<JobOutput, String> { panic!("kaboom") },
                ))
                .unwrap();
            sched.run_until_idle();
            (bad.wait(), panicky.wait())
        });
        assert_eq!(
            res.0,
            JobOutcome::Failed {
                error: "boom".to_string()
            }
        );
        assert_eq!(
            res.1,
            JobOutcome::Failed {
                error: "job panicked".to_string()
            }
        );
        assert_eq!(counter(&snap, "sched.failed"), 2);
    }

    #[test]
    fn worker_pool_drains_queues_and_joins() {
        let ((outcome_a, outcome_b), snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            let a = sched
                .submit(JobSpec::new("a", "one", 1, ok_job(3)))
                .unwrap();
            let pool = sched.start_workers(2);
            let b = sched
                .submit(JobSpec::new("b", "two", 1, ok_job(4)))
                .unwrap();
            let (oa, ob) = (a.wait(), b.wait());
            sched.shutdown();
            pool.join();
            (oa, ob)
        });
        assert_eq!(
            outcome_a,
            JobOutcome::Completed(JobOutput {
                items: 3,
                detail: String::new()
            })
        );
        assert_eq!(
            outcome_b,
            JobOutcome::Completed(JobOutput {
                items: 4,
                detail: String::new()
            })
        );
        assert_eq!(counter(&snap, "sched.completed"), 2);
        // Workers attached the submitting context, so the per-tenant
        // spans landed in this registry.
        assert_eq!(snap.spans_named("sched.job.a").len(), 1);
        assert_eq!(snap.spans_named("sched.job.b").len(), 1);
    }

    #[test]
    fn big_job_dispatches_when_idle_despite_gate() {
        let (transcript, _snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig {
                max_inflight_cost: 4,
                shed_watermark: 10_000,
                ..SchedulerConfig::default()
            });
            sched
                .submit(JobSpec::new("t", "huge", 100, ok_job(1)))
                .unwrap();
            sched.run_until_idle()
        });
        assert_eq!(
            transcript.len(),
            1,
            "idle scheduler must not starve big jobs"
        );
    }

    #[test]
    fn health_spec_names_overload_and_stall_rules() {
        let spec = scheduler_health_spec(&SchedulerConfig::default());
        let names: Vec<&str> = spec.rules().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["sched_overloaded", "sched_stalled"]);
    }

    #[test]
    fn gauges_return_to_zero_after_drain() {
        let (_out, snap) = in_registry(|| {
            let (sched, _clock) = manual_sched(SchedulerConfig::default());
            for i in 0..5 {
                sched
                    .submit(JobSpec::new("t", format!("j{i}"), 2, ok_job(1)))
                    .unwrap();
            }
            sched.run_until_idle()
        });
        assert_eq!(snap.gauges.get("sched.queued").map(|g| g.value), Some(0));
        assert_eq!(
            snap.gauges.get("sched.queued_cost").map(|g| g.value),
            Some(0)
        );
        assert_eq!(
            snap.gauges.get("sched.inflight_cost").map(|g| g.value),
            Some(0)
        );
        assert_eq!(
            snap.gauges.get("sched.tenant.t.queued").map(|g| g.value),
            Some(0)
        );
    }
}
